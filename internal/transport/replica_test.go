package transport

import (
	"testing"
	"time"

	"aces/internal/sdo"
)

func TestReplicaFrameRoundTrip(t *testing.T) {
	client, server := pair(t)
	in := sdo.SDO{Stream: 3, Seq: 41, Key: 0xDEADBEEF, Hops: 2, Payload: []byte("k7")}
	if err := client.SendReplica(5, 2, in); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindReplica || msg.To != 5 || msg.Rep != 2 {
		t.Fatalf("replica frame lost its address: %+v", msg)
	}
	if msg.SDO.Seq != 41 || msg.SDO.Key != 0xDEADBEEF || msg.SDO.Hops != 2 {
		t.Errorf("SDO mangled: %+v", msg.SDO)
	}
	if string(msg.SDO.Payload.([]byte)) != "k7" {
		t.Errorf("payload mangled: %v", msg.SDO.Payload)
	}
}

func TestReplicaTargetsRoundTrip(t *testing.T) {
	client, server := pair(t)
	in := ReplicaTargets{Epoch: 12, CPU: [][]float64{{0.3}, {0.25, 0, 0.45}, {}}}
	if err := client.SendReplicaTargets(in); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindReplicaTargets || msg.ReplicaTargets.Epoch != 12 {
		t.Fatalf("replica-targets frame lost: %+v", msg)
	}
	got := msg.ReplicaTargets.CPU
	if len(got) != 3 || len(got[0]) != 1 || len(got[1]) != 3 || len(got[2]) != 0 {
		t.Fatalf("matrix shape mangled: %v", got)
	}
	for j := range in.CPU {
		for r := range in.CPU[j] {
			if got[j][r] != in.CPU[j][r] {
				t.Errorf("CPU[%d][%d] = %g, want %g", j, r, got[j][r], in.CPU[j][r])
			}
		}
	}
}

func TestRecvRejectsBadReplicaFrame(t *testing.T) {
	client, server := pair(t)
	if err := client.send(KindReplica, []byte{0, 0, 0, 1}); err != nil {
		t.Fatal(err) // 4 bytes: PE but no replica slot, no SDO
	}
	if _, err := server.Recv(); err == nil {
		t.Errorf("short replica frame accepted")
	}
}

// TestResilientReplicaFallsBackForOldPeer: against a peer that never
// negotiated FeatureElastic, a replica-addressed SDO must degrade to a
// plain routed frame — the data survives, only the slot pinning is lost —
// and replica target matrices must be withheld entirely.
func TestResilientReplicaFallsBackForOldPeer(t *testing.T) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	rcA := NewResilientConn(func() (*Conn, error) {
		return Dial(lis.Addr(), time.Second)
	}, ResilientOptions{})
	defer rcA.Close()

	// Peer B is a raw conn whose hand-written hello advertises retarget but
	// NOT elastic — an un-upgraded binary one protocol generation back.
	gotRouted := make(chan Message, 4)
	accepted := make(chan *Conn, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		accepted <- conn
		if err := conn.SendHello(FeatureHeartbeat | FeatureRetarget); err != nil {
			t.Error(err)
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if msg.Kind == KindRouted || msg.Kind == KindReplica {
				gotRouted <- msg
			}
		}
	}()
	go func() {
		for {
			if _, err := rcA.Recv(); err != nil {
				return
			}
		}
	}()
	defer func() {
		if conn := <-accepted; conn != nil {
			conn.Close()
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return rcA.PeerSupportsRetarget() }, "hello negotiation")
	if rcA.PeerSupportsElastic() {
		t.Fatalf("non-elastic peer credited with FeatureElastic")
	}
	if err := rcA.SendReplica(4, 1, sdo.SDO{Seq: 77}); err != nil {
		t.Fatalf("SendReplica: %v", err)
	}
	select {
	case msg := <-gotRouted:
		if msg.Kind != KindRouted || msg.To != 4 || msg.SDO.Seq != 77 {
			t.Errorf("fallback frame wrong: %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replica SDO never degraded to a routed frame")
	}
}
