package transport

import (
	"errors"
	"net"
	"sync"
	"time"
)

// FlakyConn wraps a net.Conn with switchable fault injection for tests:
//
//   - Stall: writes block (respecting the write deadline) as if the peer
//     stopped reading and the TCP window filled.
//   - DropWrites: writes report success but never reach the peer — a
//     silently lossy path.
//   - Sever: the underlying connection is closed; reads and writes fail
//     until the test establishes a replacement.
//
// Faults are programmatic so a test can script a schedule: run clean,
// stall mid-run, heal, sever, let the ResilientConn redial.
type FlakyConn struct {
	net.Conn

	mu         sync.Mutex
	stallUntil time.Time
	dropWrites bool
	severed    bool
	wdeadline  time.Time
	// severAfter > 0 arms a byte-bounded sever: after that many more
	// bytes are written the connection dies, possibly mid-frame — the
	// fault a batch frame is most exposed to, since one wire frame now
	// carries many SDOs.
	severAfter int
	severArmed bool
}

// WrapFlaky wraps raw in a FlakyConn with no faults active.
func WrapFlaky(raw net.Conn) *FlakyConn { return &FlakyConn{Conn: raw} }

// Stall makes writes block for d (or until the write deadline fires,
// whichever is sooner), emulating a peer that stopped draining.
func (f *FlakyConn) Stall(d time.Duration) {
	f.mu.Lock()
	f.stallUntil = time.Now().Add(d)
	f.mu.Unlock()
}

// DropWrites toggles silent write loss.
func (f *FlakyConn) DropWrites(on bool) {
	f.mu.Lock()
	f.dropWrites = on
	f.mu.Unlock()
}

// SeverAfterBytes arms a delayed sever: the connection carries up to n
// more written bytes, then dies — truncating whatever frame those bytes
// belonged to. With batch framing a single wire frame carries many SDOs,
// so tests use this to assert that a mid-batch sever is accounted per
// member SDO, not per frame.
func (f *FlakyConn) SeverAfterBytes(n int) {
	f.mu.Lock()
	f.severAfter = n
	f.severArmed = true
	f.mu.Unlock()
}

// Sever closes the underlying connection; subsequent reads and writes
// fail, as after a network partition or peer crash.
func (f *FlakyConn) Sever() {
	f.mu.Lock()
	f.severed = true
	f.mu.Unlock()
	f.Conn.Close()
}

// errSevered mimics the error class of a reset connection.
var errSevered = errors.New("transport: connection severed (fault injection)")

// timeoutError satisfies net.Error with Timeout() == true, matching what
// a real deadline miss returns.
type timeoutError struct{}

func (timeoutError) Error() string   { return "transport: write deadline exceeded (stalled peer)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// SetWriteDeadline tracks the deadline locally so a stalled write can
// honour it, then forwards to the underlying connection.
func (f *FlakyConn) SetWriteDeadline(t time.Time) error {
	f.mu.Lock()
	f.wdeadline = t
	f.mu.Unlock()
	return f.Conn.SetWriteDeadline(t)
}

// Write applies the active fault before delegating.
func (f *FlakyConn) Write(p []byte) (int, error) {
	for {
		f.mu.Lock()
		severed := f.severed
		drop := f.dropWrites
		stall := f.stallUntil
		deadline := f.wdeadline
		f.mu.Unlock()
		if severed {
			return 0, errSevered
		}
		remaining := time.Until(stall)
		if remaining <= 0 {
			if drop {
				return len(p), nil
			}
			f.mu.Lock()
			armed, quota := f.severArmed, f.severAfter
			f.mu.Unlock()
			if armed && len(p) >= quota {
				// Deliver the remaining quota, then die mid-frame.
				if quota > 0 {
					f.Conn.Write(p[:quota])
				}
				f.Sever()
				return quota, errSevered
			}
			if armed {
				f.mu.Lock()
				f.severAfter -= len(p)
				f.mu.Unlock()
			}
			return f.Conn.Write(p)
		}
		// Stalled: block in small slices so Sever and deadline expiry are
		// observed promptly.
		if !deadline.IsZero() && !deadline.After(time.Now()) {
			return 0, timeoutError{}
		}
		sleep := 2 * time.Millisecond
		if remaining < sleep {
			sleep = remaining
		}
		if !deadline.IsZero() {
			if d := time.Until(deadline); d < sleep {
				sleep = d
			}
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
}

// Read fails once severed; otherwise it delegates unchanged (faults model
// the egress path, where the uplink writes; tests sever for read faults).
func (f *FlakyConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	severed := f.severed
	f.mu.Unlock()
	if severed {
		return 0, errSevered
	}
	return f.Conn.Read(p)
}
