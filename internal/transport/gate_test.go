package transport

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/sdo"
)

// allFeatures is the full local feature set a v2 endpoint announces.
const allFeatures = FeatureBatch | FeatureHeartbeat | FeatureRetarget |
	FeatureElastic | FeatureHier | FeatureTerm

// gateRC builds a ResilientConn that never connects — enough to call
// gateFrame, which only touches counters.
func gateRC(t *testing.T) *ResilientConn {
	t.Helper()
	rc := NewResilientConn(func() (*Conn, error) {
		return nil, net.ErrClosed
	}, ResilientOptions{BackoffMin: time.Hour})
	t.Cleanup(func() { rc.Close() })
	return rc
}

// TestGateFrameDowngrades pins the write-time re-gate's lossless
// downgrade encodings: each term framing gated against a peer without
// FeatureTerm must rewrite, in place, into exactly the bytes the enqueue
// path would have produced for that peer.
func TestGateFrameDowngrades(t *testing.T) {
	rc := gateRC(t)

	t.Run("term targets to legacy", func(t *testing.T) {
		want := encodeTargets(nil, Targets{Epoch: CollapseTermEpoch(3, 5), CPU: []float64{0.25, 0.75}})
		body := appendUint64(nil, 3)
		body = encodeTargets(body, Targets{Epoch: 5, CPU: []float64{0.25, 0.75}})
		f := outFrame{kind: KindTermTargets, body: body}
		if !rc.gateFrame(FeatureRetarget, &f) {
			t.Fatal("downgradable term-targets frame dropped")
		}
		if f.kind != KindTargets || !bytes.Equal(f.body, want) {
			t.Errorf("downgrade produced kind %v body %x, want KindTargets %x", f.kind, f.body, want)
		}
	})
	t.Run("term targets kept for term peer", func(t *testing.T) {
		body := appendUint64(nil, 3)
		body = encodeTargets(body, Targets{Epoch: 5, CPU: []float64{1}})
		orig := append([]byte(nil), body...)
		f := outFrame{kind: KindTermTargets, body: body}
		if !rc.gateFrame(FeatureRetarget|FeatureTerm, &f) {
			t.Fatal("frame dropped despite full feature match")
		}
		if f.kind != KindTermTargets || !bytes.Equal(f.body, orig) {
			t.Error("matching frame was rewritten")
		}
	})
	t.Run("term replica targets to legacy", func(t *testing.T) {
		want := encodeReplicaTargets(nil, ReplicaTargets{Epoch: CollapseTermEpoch(7, 9), CPU: [][]float64{{0.5}, {0.2, 0.3}}})
		body := appendUint64(nil, 7)
		body = encodeReplicaTargets(body, ReplicaTargets{Epoch: 9, CPU: [][]float64{{0.5}, {0.2, 0.3}}})
		f := outFrame{kind: KindTermReplicaTargets, body: body}
		if !rc.gateFrame(FeatureElastic, &f) {
			t.Fatal("downgradable term-replica-targets frame dropped")
		}
		if f.kind != KindReplicaTargets || !bytes.Equal(f.body, want) {
			t.Errorf("downgrade produced kind %v body %x, want KindReplicaTargets %x", f.kind, f.body, want)
		}
	})
	t.Run("term ack to legacy", func(t *testing.T) {
		want := encodeTargetAck(nil, TargetAck{Origin: 4, Epoch: CollapseTermEpoch(11, 13)})
		body := appendUint64(nil, 11)
		body = encodeTargetAck(body, TargetAck{Origin: 4, Epoch: 13})
		f := outFrame{kind: KindTermTargetAck, body: body}
		if !rc.gateFrame(FeatureHier, &f) {
			t.Fatal("downgradable term-ack frame dropped")
		}
		if f.kind != KindTargetAck || !bytes.Equal(f.body, want) {
			t.Errorf("downgrade produced kind %v body %x, want KindTargetAck %x", f.kind, f.body, want)
		}
	})
	t.Run("replica to routed", func(t *testing.T) {
		s := sdo.SDO{Stream: 2, Seq: 42, Origin: time.Now()}
		want, err := encodeRouted(nil, 6, s)
		if err != nil {
			t.Fatal(err)
		}
		body, err := encodeReplica(nil, 6, 2, s)
		if err != nil {
			t.Fatal(err)
		}
		f := outFrame{kind: KindReplica, body: body}
		if !rc.gateFrame(0, &f) {
			t.Fatal("replica frame dropped instead of downgraded to routed")
		}
		if f.kind != KindRouted || !bytes.Equal(f.body, want) {
			t.Errorf("downgrade produced kind %v body %x, want KindRouted %x", f.kind, f.body, want)
		}
	})
	t.Run("no downgrade drops and counts", func(t *testing.T) {
		before := rc.Stats()
		cases := []outFrame{
			{kind: KindHeartbeat, body: encodeHeartbeat(nil, Heartbeat{Node: 1, Seq: 2})},
			{kind: KindTargets, body: encodeTargets(nil, Targets{Epoch: 1, CPU: []float64{1}})},
			{kind: KindTermTargets, body: encodeTargets(appendUint64(nil, 1), Targets{Epoch: 1, CPU: []float64{1}})},
			{kind: KindReplicaTargets, body: encodeReplicaTargets(nil, ReplicaTargets{Epoch: 1, CPU: [][]float64{{1}}})},
			{kind: KindTargetAck, body: encodeTargetAck(nil, TargetAck{Origin: 1, Epoch: 1})},
		}
		for i := range cases {
			if rc.gateFrame(0, &cases[i]) {
				t.Errorf("%v passed a zero-feature gate", cases[i].kind)
			}
		}
		after := rc.Stats()
		if got := after.CtlFeatureDropped - before.CtlFeatureDropped; got != int64(len(cases)) {
			t.Errorf("CtlFeatureDropped grew by %d, want %d", got, len(cases))
		}
		if got := after.ControlDropped - before.ControlDropped; got != int64(len(cases)) {
			t.Errorf("ControlDropped grew by %d, want %d", got, len(cases))
		}
	})
	t.Run("data and feedback always pass", func(t *testing.T) {
		for _, k := range []Kind{KindData, KindRouted, KindFeedback} {
			f := outFrame{kind: k, body: []byte{1, 2, 3}}
			if !rc.gateFrame(0, &f) {
				t.Errorf("%v gated despite being protocol-intrinsic", k)
			}
		}
	})
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// recordingServer accepts connections in a loop and forwards every
// received message on a channel.
type recordingServer struct {
	l    *Listener
	msgs chan Message
}

func newRecordingServer(t *testing.T) *recordingServer {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &recordingServer{l: l, msgs: make(chan Message, 256)}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					select {
					case s.msgs <- msg:
					default:
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return s
}

// downgradeLink dials srv, wrapping each connection in a FlakyConn and
// stamping generation 1 with full peer features and every later
// generation with downgraded ones — the signature of a peer process that
// crashed back to an older binary between two TCP sessions. The linger
// keeps an enqueued control frame parked in the writer long enough for
// the test to retire the first connection underneath it.
func downgradeLink(t *testing.T, srv *recordingServer, downgraded uint64) (*ResilientConn, *atomic.Pointer[FlakyConn]) {
	t.Helper()
	var current atomic.Pointer[FlakyConn]
	var dials atomic.Int64
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.l.Addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		c := NewConn(f)
		if dials.Add(1) == 1 {
			c.setPeerFeatures(allFeatures)
		} else {
			c.setPeerFeatures(downgraded)
		}
		return c, nil
	}, ResilientOptions{
		BackoffMin:  5 * time.Millisecond,
		BatchMax:    8,
		BatchLinger: 400 * time.Millisecond,
	})
	t.Cleanup(func() { rc.Close() })
	return rc, &current
}

// retireCurrent severs the live FlakyConn and invalidates the installed
// generation, forcing the manager to redial while the writer still holds
// parked frames.
func retireCurrent(rc *ResilientConn, current *atomic.Pointer[FlakyConn]) {
	rc.mu.Lock()
	gen := rc.gen
	rc.mu.Unlock()
	if f := current.Load(); f != nil {
		f.Sever()
	}
	rc.invalidate(gen)
}

// TestReconnectDowngradeDropsUnsupportedFrame is the ISSUE 10 regression
// test for enqueue-time-only feature gating: a control frame that passed
// its gate against the connection live at enqueue time used to be
// written verbatim to whatever connection existed at write time. If the
// link reconnected in between and the new peer no longer advertised the
// feature, the peer received a frame it could not decode and tore the
// fresh connection down. The writer must re-check the live connection's
// features and drop (and count) frames with no lossless downgrade.
func TestReconnectDowngradeDropsUnsupportedFrame(t *testing.T) {
	srv := newRecordingServer(t)
	rc, current := downgradeLink(t, srv, 0) // second hello: no features at all
	waitFor(t, 5*time.Second, func() bool { return rc.PeerSupportsRetarget() }, "first hello")

	// Enqueue against the fully-featured generation 1; the writer parks
	// it in the linger window.
	if err := rc.SendTargets(Targets{Term: 2, Epoch: 6, CPU: []float64{0.5, 0.5}}); err != nil {
		t.Fatalf("SendTargets: %v", err)
	}
	retireCurrent(rc, current)
	waitFor(t, 5*time.Second, func() bool { return rc.Stats().Reconnects >= 1 }, "reconnect")
	waitFor(t, 5*time.Second, func() bool { return rc.Stats().CtlFeatureDropped == 1 },
		"write-time re-gate drop count")
	st := rc.Stats()
	if st.ControlDropped != 1 {
		t.Errorf("ControlDropped = %d, want 1 (the re-gated frame)", st.ControlDropped)
	}
	// The frame must not have reached the wire on either connection.
	select {
	case msg := <-srv.msgs:
		t.Errorf("peer received %v despite advertising no features", msg.Kind)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestReconnectDowngradeRewritesTermFrame checks the downgrade half of
// the write-time re-gate: a term-framed target vector enqueued against a
// FeatureTerm peer and written after a reconnect to a term-less (but
// still retarget-capable) peer must arrive as a legacy frame carrying
// the collapsed term — not be dropped, and not arrive term-framed.
func TestReconnectDowngradeRewritesTermFrame(t *testing.T) {
	srv := newRecordingServer(t)
	rc, current := downgradeLink(t, srv, FeatureRetarget) // second hello: legacy retarget peer
	waitFor(t, 5*time.Second, func() bool { return rc.PeerSupportsTerm() }, "first hello")

	if err := rc.SendTargets(Targets{Term: 3, Epoch: 5, CPU: []float64{0.25, 0.75}}); err != nil {
		t.Fatalf("SendTargets: %v", err)
	}
	retireCurrent(rc, current)
	waitFor(t, 5*time.Second, func() bool { return rc.Stats().Reconnects >= 1 }, "reconnect")
	deadline := time.After(5 * time.Second)
	for {
		select {
		case msg := <-srv.msgs:
			if msg.Kind != KindTargets {
				continue
			}
			if msg.Targets.Term != 3 || msg.Targets.Epoch != 5 {
				t.Errorf("delivered (term %d, epoch %d), want (3, 5) recovered from the collapsed scalar",
					msg.Targets.Term, msg.Targets.Epoch)
			}
			if st := rc.Stats(); st.CtlFeatureDropped != 0 {
				t.Errorf("CtlFeatureDropped = %d for a downgradable frame", st.CtlFeatureDropped)
			}
			return
		case <-deadline:
			t.Fatal("downgraded target frame never delivered")
		}
	}
}
