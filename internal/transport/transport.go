// Package transport carries SDOs and control feedback between processes
// over TCP, letting the live runtime (internal/spc) span machine
// boundaries the way the SPC's data fabric does. The wire protocol is a
// minimal length-delimited binary framing (no gob/JSON on the data path):
//
//	frame  := kind(u8) length(u32 BE) body
//	data   := stream(i32) seq(u64) originUnixNanos(i64) hops(i32)
//	          trace(u64) payloadLen(u32) payload
//	ctrl   := pe(i32) rmax(f64 bits)
//	hello  := version(u8) features(u64)
//	batch  := count(u32) { kind(u8) mlen(u32) member } × count
//	hbeat  := node(i32) seq(u64)
//	tgt    := epoch(u64) count(u32) cpu(f64 bits) × count
//	rep    := pe(i32) replica(i32) data
//	rtgt   := epoch(u64) peCount(u32) { slots(u32) cpu(f64 bits)×slots } × peCount
//	tack   := origin(i32) epoch(u64)
//	ttgt   := term(u64) tgt      (and likewise trtgt/ttack: term(u64) + body)
//
// trace is the observability trace ID (0 = unsampled): carrying it inside
// the routed frame is what lets a per-SDO trace be stitched across the
// TCP bridge of a partitioned deployment (internal/obs).
//
// Protocol versioning: a peer that supports optional features announces
// them with a hello frame (first frame after connect). Batch frames are
// only ever sent to a peer whose hello advertised FeatureBatch; against a
// peer that stays silent the sender falls back to one frame per SDO, so
// the two frame vocabularies interoperate. Recv consumes hello frames
// internally — callers never see them.
//
// Payloads must be []byte (or nil) on the wire; richer payloads belong to
// in-process deployments.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aces/internal/sdo"
)

// Kind discriminates frame types.
type Kind uint8

// Frame kinds.
const (
	KindData Kind = iota + 1
	KindFeedback
	// KindRouted is a data frame prefixed with a destination PE, used by
	// partitioned live-runtime deployments (spc.RemoteLink) to route SDOs
	// across process boundaries.
	KindRouted
	// KindBatch carries N data/routed members in one frame: one header,
	// one flush, one syscall for a whole outbox burst. Members are
	// length-delimited sub-frames; feedback never rides a batch (the
	// control path keeps its own frames so advertisements stay sub-Δt).
	KindBatch
	// KindHello is the version/feature announcement a peer sends first on
	// a new connection. Recv handles it internally.
	KindHello
	// KindHeartbeat is the liveness beacon of the health subsystem: the
	// sending process asserts that node Node is alive. It rides the
	// control path (never batched, like feedback) and is only sent to
	// peers that advertised FeatureHeartbeat.
	KindHeartbeat
	// KindTargets carries an epoch-numbered tier-1 CPU target vector
	// (retargeting, paper §V-B: the optimizer re-runs periodically and the
	// new c̄_j must reach every node). It rides the control path (never
	// batched) and is only sent to peers that advertised FeatureRetarget;
	// receivers reject stale epochs, so duplicated or reordered target
	// frames are harmless.
	KindTargets
	// KindReplica is a routed data frame addressed to a specific replica
	// of a PE (elastic parallelism): the SENDING process picks the replica
	// by key-hash so per-key affinity survives the process boundary. Only
	// sent to peers that advertised FeatureElastic; against older peers the
	// sender falls back to KindRouted and the receiver re-routes locally.
	KindReplica
	// KindReplicaTargets carries an epoch-numbered tier-1 target set with
	// per-replica-slot placement — the elastic superset of KindTargets.
	// Control path (never batched), FeatureElastic-gated, same stale-epoch
	// rejection as KindTargets.
	KindReplicaTargets
	// KindTargetAck flows UP the dissemination tree of the hierarchical
	// control plane: a node that applied (or relayed) an epoch reports
	// {origin node, epoch} to its parent, which forwards it unchanged
	// toward the root. The root uses the per-origin acked epoch to expose
	// dissemination lag (retarget_epoch_lag). Control path, never batched,
	// FeatureHier-gated.
	KindTargetAck
	// KindTermTargets is KindTargets with an explicit controller term
	// prefixed: targets are ordered by the lexicographic (term, epoch)
	// pair, so a standby that claimed term+1 fences every frame a deposed
	// controller may still emit (controller failover). Only sent to peers
	// that advertised FeatureTerm; against older peers the sender
	// collapses (term, epoch) into the single legacy epoch scalar as
	// term<<32 | epoch — a bijection while epoch < 2^32, so flat peers
	// keep exactly the same ordering.
	KindTermTargets
	// KindTermReplicaTargets is KindReplicaTargets with a term prefix;
	// same FeatureTerm gating and collapse rule as KindTermTargets.
	KindTermReplicaTargets
	// KindTermTargetAck is KindTargetAck with a term prefix reporting the
	// term of the acked target set; same gating and collapse rule.
	KindTermTargetAck
)

// protocolVersion is announced in hello frames. Version 2 adds batch
// framing; version 1 peers never send hello and never receive batches.
const protocolVersion = 2

// FeatureBatch advertises that this endpoint decodes KindBatch frames.
const FeatureBatch uint64 = 1 << 0

// FeatureHeartbeat advertises that this endpoint decodes KindHeartbeat
// frames and participates in heartbeat membership.
const FeatureHeartbeat uint64 = 1 << 1

// FeatureRetarget advertises that this endpoint decodes KindTargets
// frames and applies epoch-numbered tier-1 retargets.
const FeatureRetarget uint64 = 1 << 2

// FeatureElastic advertises that this endpoint decodes KindReplica and
// KindReplicaTargets frames and hosts replica groups.
const FeatureElastic uint64 = 1 << 3

// FeatureHier advertises that this endpoint understands the hierarchical
// dissemination-tree semantics: it re-relays received target frames to
// its own children and emits/forwards KindTargetAck frames upward. Flat
// v1/v2 peers never set the bit and never see ack frames.
const FeatureHier uint64 = 1 << 4

// FeatureTerm advertises that this endpoint decodes the term-prefixed
// control frames (KindTermTargets, KindTermReplicaTargets,
// KindTermTargetAck) and orders target sets by the lexicographic
// (term, epoch) pair. Senders collapse the pair into the legacy epoch
// scalar (term<<32 | epoch) for peers without the bit, so controller
// failover interoperates with flat v1/v2 peers unchanged.
const FeatureTerm uint64 = 1 << 5

// Feedback is a control-plane advertisement: PE j accepts at most RMax
// SDOs per control tick.
type Feedback struct {
	PE   int32
	RMax float64
}

// Heartbeat is a liveness beacon: the sending process asserts node Node
// is alive. Seq increments per beacon so receivers can spot reordering
// or duplication if they care; the failure detector only needs arrival.
type Heartbeat struct {
	Node int32
	Seq  uint64
}

// Targets is an epoch-numbered tier-1 CPU target vector: CPU[j] is the
// new c̄_j for PE j (the vector always spans the whole topology; nodes
// apply the entries for their local PEs). Target sets are totally
// ordered per deployment by the lexicographic (Term, Epoch) pair — a
// receiver holding (t, e) ignores any frame ordered at or below it,
// which makes redelivery and reordering harmless and fences frames from
// deposed controllers. Term is 0 until a controller failover bumps it;
// on the wire it rides KindTermTargets against FeatureTerm peers and is
// collapsed into the epoch scalar (Term<<32 | Epoch) against older ones.
type Targets struct {
	Term  uint64
	Epoch uint64
	CPU   []float64
}

// ReplicaTargets is the elastic target set: CPU[j][r] is the new c̄ of
// replica slot r of PE j (slot 0 is the primary, so collapsing each row
// to its sum recovers a Targets vector). (Term, Epoch) ordering and
// collapse semantics match Targets.
type ReplicaTargets struct {
	Term  uint64
	Epoch uint64
	CPU   [][]float64
}

// TargetAck reports, up the dissemination tree, that node Origin has
// applied targets through (Term, Epoch). Relaying parents forward it
// unchanged, so the root sees every descendant's applied epoch. Term is
// informational (epochs stay globally monotone across failovers); the
// collapse rule matches Targets.
type TargetAck struct {
	Origin int32
	Term   uint64
	Epoch  uint64
}

// Message is a decoded frame: exactly one of SDO/Feedback/Heartbeat/
// Targets is meaningful per Kind; To is set for routed frames. Batch
// frames are decoded into their members, so Recv only ever yields
// data/routed/feedback/heartbeat/targets messages. Term-prefixed
// control frames normalize to their legacy Kind with Term populated
// (and legacy frames split a collapsed term out of the epoch scalar),
// so receivers dispatch on one kind per frame family.
type Message struct {
	Kind           Kind
	SDO            sdo.SDO
	Feedback       Feedback
	Heartbeat      Heartbeat
	Targets        Targets
	ReplicaTargets ReplicaTargets
	TargetAck      TargetAck
	// To is the destination PE of a KindRouted or KindReplica frame.
	To sdo.PEID
	// Rep is the destination replica slot of a KindReplica frame.
	Rep int32
}

// epochMask is the epoch half of a collapsed (term, epoch) scalar.
const epochMask = 1<<32 - 1

// CollapseTermEpoch folds a (term, epoch) pair into the single epoch
// scalar understood by peers without FeatureTerm: term<<32 | epoch.
// While epoch < 2^32 (a deployment would need centuries of sub-second
// re-solves to overflow it) the collapse is a bijection that preserves
// lexicographic order, so legacy stale-epoch rejection fences deposed
// terms exactly as term-aware peers do.
func CollapseTermEpoch(term, epoch uint64) uint64 { return term<<32 | epoch&epochMask }

// SplitTermEpoch recovers the (term, epoch) pair from a collapsed
// scalar. Term-0 values round-trip unchanged, so pre-failover epochs
// (and every frame from a v1/v2-flat peer) decode exactly as before.
func SplitTermEpoch(raw uint64) (term, epoch uint64) { return raw >> 32, raw & epochMask }

// maxFrame bounds a frame body; anything larger is a protocol error, not a
// legitimate SDO.
const maxFrame = 16 << 20

// maxBatchMembers bounds the member count of one batch frame; a count
// beyond it cannot be legitimate (the frame body would exceed maxFrame
// anyway for any non-empty member) and is rejected before allocation.
const maxBatchMembers = 4096

// bufPool recycles frame-body buffers across encodes and receives, so the
// steady-state data path performs no per-frame heap allocation. Buffers
// are stored by pointer (storing slices directly would allocate a header
// on every Put).
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// poolBufMaxCap is the largest buffer returned to the pool; one-off jumbo
// frames must not pin megabytes inside it.
const poolBufMaxCap = 256 << 10

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > poolBufMaxCap {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// Conn is a framed connection. Writes are internally serialized, so one
// Conn may be shared by multiple sender goroutines; Recv must be called
// from a single goroutine.
type Conn struct {
	raw net.Conn
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
	// hdr is scratch for frame and batch-member headers (guarded by wmu).
	// A stack-local array would escape into the bufio.Write interface call
	// and cost one heap allocation per frame.
	hdr [16]byte
	// vhdr and vbufs are the gathered-write scratch for large batches
	// (guarded by wmu): vhdr backs the frame and member headers, vbufs is
	// the iovec list handed to net.Buffers. Both are reused across
	// batches, so the steady-state writev path allocates nothing (the
	// runtime caches the kernel iovec array on the connection's poll.FD).
	// vsend is the consumable slice handed to WriteTo — WriteTo advances
	// it in place, so it must be a separate header from vbufs (whose
	// backing array is the retained builder), and it must live on the
	// Conn: taking the address of a stack-local net.Buffers escapes into
	// the writeBuffers interface call and costs one allocation per batch.
	vhdr  []byte
	vbufs net.Buffers
	vsend net.Buffers

	// peerFeatures holds the feature bits from the peer's hello frame
	// (0 until one arrives). Written by the Recv goroutine, read by
	// writers deciding whether to emit batch frames.
	peerFeatures atomic.Uint64

	// pending holds decoded batch members not yet returned by Recv
	// (Recv-goroutine-owned, no lock needed).
	pending  []Message
	pendHead int
	// rhdr is Recv's frame-header scratch (Recv-goroutine-owned). Like hdr
	// on the write side, a stack-local array would escape into the
	// io.ReadFull interface call and cost one heap allocation per frame.
	rhdr [5]byte
}

// NewConn wraps a net.Conn with framing.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, r: bufio.NewReaderSize(raw, 64<<10), w: bufio.NewWriterSize(raw, 64<<10)}
}

// Dial connects to a framed endpoint.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetWriteDeadline bounds all future writes on the connection. A stalled
// peer (full TCP window) then fails the write with a timeout instead of
// blocking the sender forever; ResilientConn relies on this to keep its
// writer goroutine live across peer stalls.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// SetReadDeadline bounds all future reads on the connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SendHello announces this endpoint's protocol version and feature bits.
// Batch-capable endpoints send it as the first frame of every connection;
// the peer's Recv records the features and skips the frame.
func (c *Conn) SendHello(features uint64) error {
	bp := getBuf()
	defer putBuf(bp)
	body := append((*bp)[:0], protocolVersion)
	body = binary.BigEndian.AppendUint64(body, features)
	*bp = body[:0]
	return c.send(KindHello, body)
}

// PeerSupportsBatch reports whether the peer's hello advertised batch
// decoding. False until a hello arrives (and a hello only arrives while
// some goroutine is calling Recv).
func (c *Conn) PeerSupportsBatch() bool {
	return c.peerFeatures.Load()&FeatureBatch != 0
}

// PeerSupportsHeartbeat reports whether the peer's hello advertised
// heartbeat decoding. False until a hello arrives.
func (c *Conn) PeerSupportsHeartbeat() bool {
	return c.peerFeatures.Load()&FeatureHeartbeat != 0
}

// PeerSupportsRetarget reports whether the peer's hello advertised
// target-frame decoding. False until a hello arrives.
func (c *Conn) PeerSupportsRetarget() bool {
	return c.peerFeatures.Load()&FeatureRetarget != 0
}

// PeerSupportsElastic reports whether the peer's hello advertised
// replica-frame decoding. False until a hello arrives.
func (c *Conn) PeerSupportsElastic() bool {
	return c.peerFeatures.Load()&FeatureElastic != 0
}

// PeerSupportsHier reports whether the peer's hello advertised the
// hierarchical dissemination-tree semantics (target relaying and ack
// frames). False until a hello arrives.
func (c *Conn) PeerSupportsHier() bool {
	return c.peerFeatures.Load()&FeatureHier != 0
}

// PeerSupportsTerm reports whether the peer's hello advertised
// term-prefixed control frames. False until a hello arrives; senders
// then collapse (term, epoch) into the legacy epoch scalar.
func (c *Conn) PeerSupportsTerm() bool {
	return c.peerFeatures.Load()&FeatureTerm != 0
}

// setPeerFeatures force-sets the peer feature bits (tests that need
// batching active without running a Recv loop on the sender side).
func (c *Conn) setPeerFeatures(f uint64) { c.peerFeatures.Store(f) }

// SendSDO writes one data frame. The payload must be nil or []byte.
func (c *Conn) SendSDO(s sdo.SDO) error {
	bp := getBuf()
	defer putBuf(bp)
	body, err := encodeSDO((*bp)[:0], s)
	if err != nil {
		return err
	}
	*bp = body[:0]
	return c.send(KindData, body)
}

// encodeSDO appends the data-frame body for s to dst and returns the
// extended slice (append-style, so callers can reuse pooled buffers).
func encodeSDO(dst []byte, s sdo.SDO) ([]byte, error) {
	var payload []byte
	switch p := s.Payload.(type) {
	case nil:
	case []byte:
		payload = p
	default:
		return nil, fmt.Errorf("transport: payload must be []byte or nil, got %T", s.Payload)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Stream))
	dst = binary.BigEndian.AppendUint64(dst, s.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.Origin.UnixNano()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Hops))
	dst = binary.BigEndian.AppendUint64(dst, s.Trace)
	dst = binary.BigEndian.AppendUint64(dst, s.Key)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return dst, nil
}

// SendRouted writes a data frame addressed to a specific PE in a peer
// process.
func (c *Conn) SendRouted(to sdo.PEID, s sdo.SDO) error {
	bp := getBuf()
	defer putBuf(bp)
	body, err := encodeRouted((*bp)[:0], to, s)
	if err != nil {
		return err
	}
	*bp = body[:0]
	return c.send(KindRouted, body)
}

// encodeRouted appends the routed-frame body (destination PE + SDO) to dst.
func encodeRouted(dst []byte, to sdo.PEID, s sdo.SDO) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(to))
	return encodeSDO(dst, s)
}

// SendReplica writes a data frame addressed to a specific replica slot of
// a PE in a peer process. Callers must gate on PeerSupportsElastic (and
// fall back to SendRouted otherwise).
func (c *Conn) SendReplica(to sdo.PEID, rep int32, s sdo.SDO) error {
	bp := getBuf()
	defer putBuf(bp)
	body, err := encodeReplica((*bp)[:0], to, rep, s)
	if err != nil {
		return err
	}
	*bp = body[:0]
	return c.send(KindReplica, body)
}

// encodeReplica appends the replica-frame body (PE + replica slot + SDO).
func encodeReplica(dst []byte, to sdo.PEID, rep int32, s sdo.SDO) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(to))
	dst = binary.BigEndian.AppendUint32(dst, uint32(rep))
	return encodeSDO(dst, s)
}

// decodeReplica decodes a replica-frame body: PE + replica slot + SDO.
func decodeReplica(body []byte) (sdo.PEID, int32, sdo.SDO, error) {
	if len(body) < 8 {
		return 0, 0, sdo.SDO{}, fmt.Errorf("transport: short replica frame (%d bytes)", len(body))
	}
	to := sdo.PEID(int32(binary.BigEndian.Uint32(body[0:4])))
	rep := int32(binary.BigEndian.Uint32(body[4:8]))
	s, err := decodeSDO(body[8:])
	if err != nil {
		return 0, 0, sdo.SDO{}, err
	}
	return to, rep, s, nil
}

// SendFeedback writes one control frame.
func (c *Conn) SendFeedback(f Feedback) error {
	bp := getBuf()
	defer putBuf(bp)
	body := encodeFeedback((*bp)[:0], f)
	*bp = body[:0]
	return c.send(KindFeedback, body)
}

// encodeFeedback appends the feedback-frame body to dst.
func encodeFeedback(dst []byte, f Feedback) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.PE))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.RMax))
	return dst
}

// SendHeartbeat writes one liveness beacon. Like feedback, heartbeats
// keep their own frames (never batched): membership judgement rides the
// control path's latency, not the data path's.
func (c *Conn) SendHeartbeat(hb Heartbeat) error {
	bp := getBuf()
	defer putBuf(bp)
	body := encodeHeartbeat((*bp)[:0], hb)
	*bp = body[:0]
	return c.send(KindHeartbeat, body)
}

// encodeHeartbeat appends the heartbeat-frame body to dst.
func encodeHeartbeat(dst []byte, hb Heartbeat) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(hb.Node))
	dst = binary.BigEndian.AppendUint64(dst, hb.Seq)
	return dst
}

// SendTargets writes one (term, epoch)-numbered target vector. Like
// feedback and heartbeats, target frames keep their own frames (never
// batched): a retarget must not wait behind a data burst. Against a
// FeatureTerm peer the term rides a KindTermTargets frame; otherwise it
// is collapsed into the legacy epoch scalar.
func (c *Conn) SendTargets(t Targets) error {
	bp := getBuf()
	defer putBuf(bp)
	if c.PeerSupportsTerm() {
		body := binary.BigEndian.AppendUint64((*bp)[:0], t.Term)
		body = encodeTargets(body, Targets{Epoch: t.Epoch, CPU: t.CPU})
		*bp = body[:0]
		return c.send(KindTermTargets, body)
	}
	body := encodeTargets((*bp)[:0], Targets{Epoch: CollapseTermEpoch(t.Term, t.Epoch), CPU: t.CPU})
	*bp = body[:0]
	return c.send(KindTargets, body)
}

// encodeTargets appends the targets-frame body to dst:
// epoch(u64) count(u32) cpu(f64 bits)×count.
func encodeTargets(dst []byte, t Targets) []byte {
	dst = binary.BigEndian.AppendUint64(dst, t.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.CPU)))
	for _, c := range t.CPU {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c))
	}
	return dst
}

// decodeTargets decodes a targets-frame body. The CPU vector is copied
// out, so the caller may recycle the buffer immediately.
func decodeTargets(body []byte) (Targets, error) {
	if len(body) < 12 {
		return Targets{}, fmt.Errorf("transport: short targets frame (%d bytes)", len(body))
	}
	t := Targets{Epoch: binary.BigEndian.Uint64(body[0:8])}
	count := binary.BigEndian.Uint32(body[8:12])
	if int(count)*8 != len(body)-12 {
		return Targets{}, fmt.Errorf("transport: targets count %d disagrees with frame size", count)
	}
	if count > 0 {
		t.CPU = make([]float64, count)
		for i := range t.CPU {
			t.CPU[i] = math.Float64frombits(binary.BigEndian.Uint64(body[12+8*i:]))
		}
	}
	return t, nil
}

// SendReplicaTargets writes one (term, epoch)-numbered per-replica
// target set. Control-path contract matches SendTargets: own frame,
// never batched, term collapsed for non-FeatureTerm peers. Callers must
// gate on PeerSupportsElastic.
func (c *Conn) SendReplicaTargets(rt ReplicaTargets) error {
	bp := getBuf()
	defer putBuf(bp)
	if c.PeerSupportsTerm() {
		body := binary.BigEndian.AppendUint64((*bp)[:0], rt.Term)
		body = encodeReplicaTargets(body, ReplicaTargets{Epoch: rt.Epoch, CPU: rt.CPU})
		*bp = body[:0]
		return c.send(KindTermReplicaTargets, body)
	}
	body := encodeReplicaTargets((*bp)[:0], ReplicaTargets{Epoch: CollapseTermEpoch(rt.Term, rt.Epoch), CPU: rt.CPU})
	*bp = body[:0]
	return c.send(KindReplicaTargets, body)
}

// encodeReplicaTargets appends the replica-targets body:
// epoch(u64) peCount(u32) { slotCount(u32) cpu(f64 bits)×slotCount } × peCount.
func encodeReplicaTargets(dst []byte, rt ReplicaTargets) []byte {
	dst = binary.BigEndian.AppendUint64(dst, rt.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rt.CPU)))
	for _, row := range rt.CPU {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(row)))
		for _, c := range row {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c))
		}
	}
	return dst
}

// decodeReplicaTargets decodes a replica-targets body. Rows are copied
// out, so the caller may recycle the buffer immediately.
func decodeReplicaTargets(body []byte) (ReplicaTargets, error) {
	if len(body) < 12 {
		return ReplicaTargets{}, fmt.Errorf("transport: short replica-targets frame (%d bytes)", len(body))
	}
	rt := ReplicaTargets{Epoch: binary.BigEndian.Uint64(body[0:8])}
	peCount := binary.BigEndian.Uint32(body[8:12])
	if peCount > maxFrame/4 {
		return ReplicaTargets{}, fmt.Errorf("transport: replica-targets PE count %d out of range", peCount)
	}
	rest := body[12:]
	rt.CPU = make([][]float64, peCount)
	for j := uint32(0); j < peCount; j++ {
		if len(rest) < 4 {
			return ReplicaTargets{}, fmt.Errorf("transport: truncated replica-targets row %d", j)
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		rest = rest[4:]
		if n > maxBatchMembers || int(n)*8 > len(rest) {
			return ReplicaTargets{}, fmt.Errorf("transport: replica-targets row %d slot count %d out of range", j, n)
		}
		row := make([]float64, n)
		for r := range row {
			row[r] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*r:]))
		}
		rt.CPU[j] = row
		rest = rest[8*n:]
	}
	if len(rest) != 0 {
		return ReplicaTargets{}, fmt.Errorf("transport: %d trailing bytes after replica-targets rows", len(rest))
	}
	return rt, nil
}

// SendTargetAck writes one upward ack frame. Control-path contract
// matches SendTargets: own frame, never batched, term collapsed for
// non-FeatureTerm peers. Callers must gate on PeerSupportsHier — a flat
// peer has no tree position to account acks to.
func (c *Conn) SendTargetAck(a TargetAck) error {
	bp := getBuf()
	defer putBuf(bp)
	if c.PeerSupportsTerm() {
		body := binary.BigEndian.AppendUint64((*bp)[:0], a.Term)
		body = encodeTargetAck(body, TargetAck{Origin: a.Origin, Epoch: a.Epoch})
		*bp = body[:0]
		return c.send(KindTermTargetAck, body)
	}
	body := encodeTargetAck((*bp)[:0], TargetAck{Origin: a.Origin, Epoch: CollapseTermEpoch(a.Term, a.Epoch)})
	*bp = body[:0]
	return c.send(KindTargetAck, body)
}

// encodeTargetAck appends the ack-frame body: origin(i32) epoch(u64).
func encodeTargetAck(dst []byte, a TargetAck) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Origin))
	dst = binary.BigEndian.AppendUint64(dst, a.Epoch)
	return dst
}

// send writes one frame and flushes: the contract for direct Conn users
// (including the control path, whose feedback frames must reach the peer
// sub-Δt, not sit in a 64 KiB buffer). Writers that know more work is
// queued use writeFrame/Flush to coalesce syscalls.
func (c *Conn) send(k Kind, body []byte) error {
	return c.writeFrame(k, body, true)
}

// writeFrame writes one frame, flushing only when flush is set. A caller
// with queued work passes flush=false and calls Flush (or lets the last
// frame flush) when the burst drains — this is what fixes the historic
// one-syscall-per-frame behaviour of the uplink writer.
func (c *Conn) writeFrame(k Kind, body []byte, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:5]
	hdr[0] = byte(k)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := c.w.Write(hdr); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.w.Write(body); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	if flush {
		return c.w.Flush()
	}
	return nil
}

// Flush pushes any buffered frames to the wire.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}

// vecMinBytes is the batch size at which sendBatch switches from copying
// members through the bufio writer to a zero-copy gathered write
// (net.Buffers → writev). Below it, one memcpy into the 64 KiB write
// buffer is cheaper than marshalling an iovec per member and costs no
// extra syscall (the burst coalesces several batches into one flush);
// above it, the copy dominates — member payloads go to the kernel
// straight from their pooled encode buffers, one syscall per batch
// regardless of size.
const vecMinBytes = 8 << 10

// vecMinSeg additionally requires members to average at least this many
// bytes before the gathered path engages. The kernel walks two iovecs
// per member, so for tiny frames (header-only SDOs are 36 bytes) the
// per-iovec bookkeeping exceeds the memcpy it saves — measured ~1.5×
// slower than the copy path at 256×41 B — while for payload-carrying
// members the copy is the dominant cost and gathering wins.
const vecMinSeg = 256

// sendBatch writes the given pre-encoded members (kind + body pairs) as
// one KindBatch frame: a single header and, when flush is set, a single
// syscall for the whole burst. Members must be KindData or KindRouted.
// Large batches take the gathered-write path instead (see vecMinBytes).
func (c *Conn) sendBatch(members []outFrame, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	total := 4
	for i := range members {
		total += 5 + len(members[i].body)
	}
	if total > maxFrame {
		return fmt.Errorf("transport: batch of %d bytes exceeds frame limit", total)
	}
	if total >= vecMinBytes && total >= len(members)*vecMinSeg {
		return c.sendBatchVec(members, total)
	}
	hdr := c.hdr[:9] // frame header (5) + member count (4)
	hdr[0] = byte(KindBatch)
	binary.BigEndian.PutUint32(hdr[1:5], uint32(total))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(members)))
	if _, err := c.w.Write(hdr); err != nil {
		return fmt.Errorf("transport: write batch header: %w", err)
	}
	for i := range members {
		mh := c.hdr[:5]
		mh[0] = byte(members[i].kind)
		binary.BigEndian.PutUint32(mh[1:], uint32(len(members[i].body)))
		if _, err := c.w.Write(mh); err != nil {
			return fmt.Errorf("transport: write batch member header: %w", err)
		}
		if _, err := c.w.Write(members[i].body); err != nil {
			return fmt.Errorf("transport: write batch member: %w", err)
		}
	}
	if flush {
		return c.w.Flush()
	}
	return nil
}

// sendBatchVec writes one KindBatch frame as a gathered write: the frame
// header, every member header (all backed by the reusable vhdr scratch)
// and every member body go to the kernel in a single writev, with no
// copy into the bufio writer. Called with wmu held. The bufio writer is
// flushed first so frame order on the wire is preserved; the gathered
// write itself always reaches the wire, so the caller's flush intent is
// trivially satisfied.
func (c *Conn) sendBatchVec(members []outFrame, total int) error {
	need := 9 + 5*len(members)
	if cap(c.vhdr) < need {
		c.vhdr = make([]byte, need)
	}
	vh := c.vhdr[:need]
	vh[0] = byte(KindBatch)
	binary.BigEndian.PutUint32(vh[1:5], uint32(total))
	binary.BigEndian.PutUint32(vh[5:9], uint32(len(members)))
	if cap(c.vbufs) < 1+2*len(members) {
		c.vbufs = make(net.Buffers, 0, 1+2*len(members))
	}
	bufs := append(c.vbufs[:0], vh[:9])
	off := 9
	for i := range members {
		mh := vh[off : off+5]
		off += 5
		mh[0] = byte(members[i].kind)
		binary.BigEndian.PutUint32(mh[1:], uint32(len(members[i].body)))
		bufs = append(bufs, mh, members[i].body)
	}
	c.vbufs = bufs
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush before gathered batch: %w", err)
	}
	c.vsend = bufs
	_, err := c.vsend.WriteTo(c.raw)
	c.vsend = nil
	// WriteTo consumed the vsend header; clear the retained builder so
	// this scratch does not keep the members' pooled buffers alive (the
	// caller recycles them as soon as we return).
	for i := range c.vbufs {
		c.vbufs[i] = nil
	}
	c.vbufs = c.vbufs[:0]
	if err != nil {
		return fmt.Errorf("transport: write gathered batch: %w", err)
	}
	return nil
}

// Recv reads the next frame. It returns io.EOF on orderly shutdown. Hello
// frames are consumed internally (recording the peer's features); batch
// frames are split and their members returned one per call.
func (c *Conn) Recv() (Message, error) {
	for {
		if c.pendHead < len(c.pending) {
			msg := c.pending[c.pendHead]
			c.pending[c.pendHead] = Message{} // release payload reference
			c.pendHead++
			return msg, nil
		}
		hdr := c.rhdr[:]
		if _, err := io.ReadFull(c.r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Message{}, io.EOF
			}
			return Message{}, fmt.Errorf("transport: read header: %w", err)
		}
		kind := Kind(hdr[0])
		n := binary.BigEndian.Uint32(hdr[1:])
		if n > maxFrame {
			return Message{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
		}
		bp := getBuf()
		if cap(*bp) < int(n) {
			*bp = make([]byte, n)
		}
		body := (*bp)[:n]
		if _, err := io.ReadFull(c.r, body); err != nil {
			putBuf(bp)
			return Message{}, fmt.Errorf("transport: read body: %w", err)
		}
		msg, handled, err := c.decodeFrame(kind, body)
		*bp = body[:0]
		putBuf(bp)
		if err != nil {
			return Message{}, err
		}
		if handled {
			continue // hello or batch: nothing (yet) to hand the caller
		}
		return msg, nil
	}
}

// decodeFrame decodes one frame body. handled=true means the frame was
// consumed internally (hello recorded, batch split into c.pending) and
// Recv should continue with the next frame or pending member. The body is
// never retained: payloads are copied out, so the caller can pool it.
func (c *Conn) decodeFrame(kind Kind, body []byte) (msg Message, handled bool, err error) {
	switch kind {
	case KindData:
		s, err := decodeSDO(body)
		if err != nil {
			return Message{}, false, err
		}
		return Message{Kind: KindData, SDO: s}, false, nil
	case KindRouted:
		to, s, err := decodeRouted(body)
		if err != nil {
			return Message{}, false, err
		}
		return Message{Kind: KindRouted, SDO: s, To: to}, false, nil
	case KindFeedback:
		if len(body) != 12 {
			return Message{}, false, fmt.Errorf("transport: bad feedback frame (%d bytes)", len(body))
		}
		return Message{Kind: KindFeedback, Feedback: Feedback{
			PE:   int32(binary.BigEndian.Uint32(body[0:4])),
			RMax: math.Float64frombits(binary.BigEndian.Uint64(body[4:12])),
		}}, false, nil
	case KindHeartbeat:
		if len(body) != 12 {
			return Message{}, false, fmt.Errorf("transport: bad heartbeat frame (%d bytes)", len(body))
		}
		return Message{Kind: KindHeartbeat, Heartbeat: Heartbeat{
			Node: int32(binary.BigEndian.Uint32(body[0:4])),
			Seq:  binary.BigEndian.Uint64(body[4:12]),
		}}, false, nil
	case KindTargets:
		t, err := decodeTargets(body)
		if err != nil {
			return Message{}, false, err
		}
		t.Term, t.Epoch = SplitTermEpoch(t.Epoch)
		return Message{Kind: KindTargets, Targets: t}, false, nil
	case KindTermTargets:
		if len(body) < 8 {
			return Message{}, false, fmt.Errorf("transport: short term-targets frame (%d bytes)", len(body))
		}
		t, err := decodeTargets(body[8:])
		if err != nil {
			return Message{}, false, err
		}
		t.Term = binary.BigEndian.Uint64(body[0:8])
		return Message{Kind: KindTargets, Targets: t}, false, nil
	case KindReplica:
		to, rep, s, err := decodeReplica(body)
		if err != nil {
			return Message{}, false, err
		}
		return Message{Kind: KindReplica, SDO: s, To: to, Rep: rep}, false, nil
	case KindReplicaTargets:
		rt, err := decodeReplicaTargets(body)
		if err != nil {
			return Message{}, false, err
		}
		rt.Term, rt.Epoch = SplitTermEpoch(rt.Epoch)
		return Message{Kind: KindReplicaTargets, ReplicaTargets: rt}, false, nil
	case KindTermReplicaTargets:
		if len(body) < 8 {
			return Message{}, false, fmt.Errorf("transport: short term-replica-targets frame (%d bytes)", len(body))
		}
		rt, err := decodeReplicaTargets(body[8:])
		if err != nil {
			return Message{}, false, err
		}
		rt.Term = binary.BigEndian.Uint64(body[0:8])
		return Message{Kind: KindReplicaTargets, ReplicaTargets: rt}, false, nil
	case KindTargetAck:
		if len(body) != 12 {
			return Message{}, false, fmt.Errorf("transport: bad target-ack frame (%d bytes)", len(body))
		}
		term, epoch := SplitTermEpoch(binary.BigEndian.Uint64(body[4:12]))
		return Message{Kind: KindTargetAck, TargetAck: TargetAck{
			Origin: int32(binary.BigEndian.Uint32(body[0:4])),
			Term:   term,
			Epoch:  epoch,
		}}, false, nil
	case KindTermTargetAck:
		if len(body) != 20 {
			return Message{}, false, fmt.Errorf("transport: bad term-target-ack frame (%d bytes)", len(body))
		}
		return Message{Kind: KindTargetAck, TargetAck: TargetAck{
			Origin: int32(binary.BigEndian.Uint32(body[8:12])),
			Term:   binary.BigEndian.Uint64(body[0:8]),
			Epoch:  binary.BigEndian.Uint64(body[12:20]),
		}}, false, nil
	case KindBatch:
		if err := c.decodeBatch(body); err != nil {
			return Message{}, false, err
		}
		return Message{}, true, nil
	case KindHello:
		if len(body) != 9 {
			return Message{}, false, fmt.Errorf("transport: bad hello frame (%d bytes)", len(body))
		}
		// Future versions may widen the hello; the version byte is recorded
		// for diagnostics, the feature bits gate behaviour.
		c.peerFeatures.Store(binary.BigEndian.Uint64(body[1:9]))
		return Message{}, true, nil
	default:
		return Message{}, false, fmt.Errorf("transport: unknown frame kind %d", kind)
	}
}

// decodeBatch splits a batch body into c.pending. Members may only be
// data, routed or replica frames; anything else (nested batches, control
// frames) is a protocol error.
func (c *Conn) decodeBatch(body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("transport: short batch frame (%d bytes)", len(body))
	}
	count := binary.BigEndian.Uint32(body[0:4])
	if count == 0 || count > maxBatchMembers {
		return fmt.Errorf("transport: batch member count %d out of range", count)
	}
	c.pending = c.pending[:0]
	c.pendHead = 0
	rest := body[4:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 5 {
			return fmt.Errorf("transport: truncated batch member %d", i)
		}
		k := Kind(rest[0])
		mlen := binary.BigEndian.Uint32(rest[1:5])
		if int(mlen) > len(rest)-5 {
			return fmt.Errorf("transport: batch member %d overruns frame", i)
		}
		mbody := rest[5 : 5+mlen]
		switch k {
		case KindData:
			s, err := decodeSDO(mbody)
			if err != nil {
				return err
			}
			c.pending = append(c.pending, Message{Kind: KindData, SDO: s})
		case KindRouted:
			to, s, err := decodeRouted(mbody)
			if err != nil {
				return err
			}
			c.pending = append(c.pending, Message{Kind: KindRouted, SDO: s, To: to})
		case KindReplica:
			to, rep, s, err := decodeReplica(mbody)
			if err != nil {
				return err
			}
			c.pending = append(c.pending, Message{Kind: KindReplica, SDO: s, To: to, Rep: rep})
		default:
			return fmt.Errorf("transport: batch member %d has non-data kind %d", i, k)
		}
		rest = rest[5+mlen:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after batch members", len(rest))
	}
	return nil
}

// sdoHeaderLen is the fixed prefix of a data-frame body: stream(4) +
// seq(8) + origin(8) + hops(4) + trace(8) + key(8) + payloadLen(4). The
// partition key rides every data frame so a receiver can re-route the SDO
// among its local replicas with the same key affinity the sender used.
const sdoHeaderLen = 44

// decodeSDO decodes a data-frame body. The payload (if any) is copied out
// of body, so the caller may recycle the buffer immediately.
func decodeSDO(body []byte) (sdo.SDO, error) {
	if len(body) < sdoHeaderLen {
		return sdo.SDO{}, fmt.Errorf("transport: short data frame (%d bytes)", len(body))
	}
	s := sdo.SDO{
		Stream: sdo.StreamID(int32(binary.BigEndian.Uint32(body[0:4]))),
		Seq:    binary.BigEndian.Uint64(body[4:12]),
		Origin: time.Unix(0, int64(binary.BigEndian.Uint64(body[12:20]))),
		Hops:   int(int32(binary.BigEndian.Uint32(body[20:24]))),
		Trace:  binary.BigEndian.Uint64(body[24:32]),
		Key:    binary.BigEndian.Uint64(body[32:40]),
	}
	plen := binary.BigEndian.Uint32(body[40:44])
	if int(plen) != len(body)-sdoHeaderLen {
		return sdo.SDO{}, fmt.Errorf("transport: payload length %d disagrees with frame size", plen)
	}
	if plen > 0 {
		s.Payload = append([]byte(nil), body[sdoHeaderLen:]...)
		s.Bytes = int(plen)
	} else {
		s.Bytes = 1
	}
	return s, nil
}

// decodeRouted decodes a routed-frame body: destination PE + SDO.
func decodeRouted(body []byte) (sdo.PEID, sdo.SDO, error) {
	if len(body) < 4 {
		return 0, sdo.SDO{}, fmt.Errorf("transport: short routed frame (%d bytes)", len(body))
	}
	to := sdo.PEID(int32(binary.BigEndian.Uint32(body[0:4])))
	s, err := decodeSDO(body[4:])
	if err != nil {
		return 0, sdo.SDO{}, err
	}
	return to, s, nil
}

// Listener accepts framed connections.
type Listener struct {
	l net.Listener
}

// Listen binds a TCP listener; addr ":0" picks a free port.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewConn(raw), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
