// Package transport carries SDOs and control feedback between processes
// over TCP, letting the live runtime (internal/spc) span machine
// boundaries the way the SPC's data fabric does. The wire protocol is a
// minimal length-delimited binary framing (no gob/JSON on the data path):
//
//	frame  := kind(u8) length(u32 BE) body
//	data   := stream(i32) seq(u64) originUnixNanos(i64) hops(i32)
//	          trace(u64) payloadLen(u32) payload
//	ctrl   := pe(i32) rmax(f64 bits)
//
// trace is the observability trace ID (0 = unsampled): carrying it inside
// the routed frame is what lets a per-SDO trace be stitched across the
// TCP bridge of a partitioned deployment (internal/obs).
//
// Payloads must be []byte (or nil) on the wire; richer payloads belong to
// in-process deployments.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"aces/internal/sdo"
)

// Kind discriminates frame types.
type Kind uint8

// Frame kinds.
const (
	KindData Kind = iota + 1
	KindFeedback
	// KindRouted is a data frame prefixed with a destination PE, used by
	// partitioned live-runtime deployments (spc.RemoteLink) to route SDOs
	// across process boundaries.
	KindRouted
)

// Feedback is a control-plane advertisement: PE j accepts at most RMax
// SDOs per control tick.
type Feedback struct {
	PE   int32
	RMax float64
}

// Message is a decoded frame: exactly one of SDO/Feedback is meaningful
// per Kind; To is set for routed frames.
type Message struct {
	Kind     Kind
	SDO      sdo.SDO
	Feedback Feedback
	// To is the destination PE of a KindRouted frame.
	To sdo.PEID
}

// maxFrame bounds a frame body; anything larger is a protocol error, not a
// legitimate SDO.
const maxFrame = 16 << 20

// Conn is a framed connection. Writes are internally serialized, so one
// Conn may be shared by multiple sender goroutines; Recv must be called
// from a single goroutine.
type Conn struct {
	raw net.Conn
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

// NewConn wraps a net.Conn with framing.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, r: bufio.NewReaderSize(raw, 64<<10), w: bufio.NewWriterSize(raw, 64<<10)}
}

// Dial connects to a framed endpoint.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetWriteDeadline bounds all future writes on the connection. A stalled
// peer (full TCP window) then fails the write with a timeout instead of
// blocking the sender forever; ResilientConn relies on this to keep its
// writer goroutine live across peer stalls.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// SetReadDeadline bounds all future reads on the connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SendSDO writes one data frame. The payload must be nil or []byte.
func (c *Conn) SendSDO(s sdo.SDO) error {
	body, err := encodeSDO(s)
	if err != nil {
		return err
	}
	return c.send(KindData, body)
}

func encodeSDO(s sdo.SDO) ([]byte, error) {
	var payload []byte
	switch p := s.Payload.(type) {
	case nil:
	case []byte:
		payload = p
	default:
		return nil, fmt.Errorf("transport: payload must be []byte or nil, got %T", s.Payload)
	}
	body := make([]byte, 0, sdoHeaderLen+len(payload))
	body = binary.BigEndian.AppendUint32(body, uint32(s.Stream))
	body = binary.BigEndian.AppendUint64(body, s.Seq)
	body = binary.BigEndian.AppendUint64(body, uint64(s.Origin.UnixNano()))
	body = binary.BigEndian.AppendUint32(body, uint32(s.Hops))
	body = binary.BigEndian.AppendUint64(body, s.Trace)
	body = binary.BigEndian.AppendUint32(body, uint32(len(payload)))
	body = append(body, payload...)
	return body, nil
}

// SendRouted writes a data frame addressed to a specific PE in a peer
// process.
func (c *Conn) SendRouted(to sdo.PEID, s sdo.SDO) error {
	body, err := encodeRouted(to, s)
	if err != nil {
		return err
	}
	return c.send(KindRouted, body)
}

func encodeRouted(to sdo.PEID, s sdo.SDO) ([]byte, error) {
	body, err := encodeSDO(s)
	if err != nil {
		return nil, err
	}
	routed := make([]byte, 0, 4+len(body))
	routed = binary.BigEndian.AppendUint32(routed, uint32(to))
	routed = append(routed, body...)
	return routed, nil
}

// SendFeedback writes one control frame.
func (c *Conn) SendFeedback(f Feedback) error {
	return c.send(KindFeedback, encodeFeedback(f))
}

func encodeFeedback(f Feedback) []byte {
	body := make([]byte, 0, 12)
	body = binary.BigEndian.AppendUint32(body, uint32(f.PE))
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(f.RMax))
	return body
}

func (c *Conn) send(k Kind, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	hdr[0] = byte(k)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.w.Write(body); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	return c.w.Flush()
}

// Recv reads the next frame. It returns io.EOF on orderly shutdown.
func (c *Conn) Recv() (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("transport: read header: %w", err)
	}
	kind := Kind(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return Message{}, fmt.Errorf("transport: read body: %w", err)
	}
	switch kind {
	case KindData:
		s, err := decodeSDO(body)
		if err != nil {
			return Message{}, err
		}
		return Message{Kind: KindData, SDO: s}, nil
	case KindRouted:
		if len(body) < 4 {
			return Message{}, fmt.Errorf("transport: short routed frame (%d bytes)", len(body))
		}
		to := sdo.PEID(int32(binary.BigEndian.Uint32(body[0:4])))
		s, err := decodeSDO(body[4:])
		if err != nil {
			return Message{}, err
		}
		return Message{Kind: KindRouted, SDO: s, To: to}, nil
	case KindFeedback:
		if len(body) != 12 {
			return Message{}, fmt.Errorf("transport: bad feedback frame (%d bytes)", len(body))
		}
		return Message{Kind: KindFeedback, Feedback: Feedback{
			PE:   int32(binary.BigEndian.Uint32(body[0:4])),
			RMax: math.Float64frombits(binary.BigEndian.Uint64(body[4:12])),
		}}, nil
	default:
		return Message{}, fmt.Errorf("transport: unknown frame kind %d", kind)
	}
}

// sdoHeaderLen is the fixed prefix of a data-frame body: stream(4) +
// seq(8) + origin(8) + hops(4) + trace(8) + payloadLen(4).
const sdoHeaderLen = 36

func decodeSDO(body []byte) (sdo.SDO, error) {
	if len(body) < sdoHeaderLen {
		return sdo.SDO{}, fmt.Errorf("transport: short data frame (%d bytes)", len(body))
	}
	s := sdo.SDO{
		Stream: sdo.StreamID(int32(binary.BigEndian.Uint32(body[0:4]))),
		Seq:    binary.BigEndian.Uint64(body[4:12]),
		Origin: time.Unix(0, int64(binary.BigEndian.Uint64(body[12:20]))),
		Hops:   int(int32(binary.BigEndian.Uint32(body[20:24]))),
		Trace:  binary.BigEndian.Uint64(body[24:32]),
	}
	plen := binary.BigEndian.Uint32(body[32:36])
	if int(plen) != len(body)-sdoHeaderLen {
		return sdo.SDO{}, fmt.Errorf("transport: payload length %d disagrees with frame size", plen)
	}
	if plen > 0 {
		s.Payload = body[sdoHeaderLen:]
		s.Bytes = int(plen)
	} else {
		s.Bytes = 1
	}
	return s, nil
}

// Listener accepts framed connections.
type Listener struct {
	l net.Listener
}

// Listen binds a TCP listener; addr ":0" picks a free port.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewConn(raw), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
