package transport

import (
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/sdo"
)

// member encodes one batch member the way the resilient writer would.
func member(t *testing.T, k Kind, to sdo.PEID, s sdo.SDO) outFrame {
	t.Helper()
	var body []byte
	var err error
	switch k {
	case KindRouted:
		body, err = encodeRouted(nil, to, s)
	default:
		body, err = encodeSDO(nil, s)
	}
	if err != nil {
		t.Fatal(err)
	}
	return outFrame{kind: k, body: body}
}

func TestBatchRoundTrip(t *testing.T) {
	client, server := pair(t)
	origin := time.Unix(0, 987654321)
	members := []outFrame{
		member(t, KindData, 0, sdo.SDO{Stream: 7, Seq: 1, Origin: origin, Hops: 2, Trace: 0xABCDEF, Payload: []byte("first"), Bytes: 5}),
		member(t, KindRouted, 9, sdo.SDO{Stream: 7, Seq: 2, Origin: origin, Hops: 3, Trace: 0x1234}),
		member(t, KindData, 0, sdo.SDO{Stream: 8, Seq: 3, Origin: origin}),
	}
	if err := client.sendBatch(members, true); err != nil {
		t.Fatal(err)
	}
	m1, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Kind != KindData || m1.SDO.Seq != 1 || m1.SDO.Hops != 2 {
		t.Fatalf("member 1 mangled: %+v", m1)
	}
	if m1.SDO.Trace != 0xABCDEF {
		t.Errorf("trace ID lost riding a batch: %#x", m1.SDO.Trace)
	}
	if string(m1.SDO.Payload.([]byte)) != "first" {
		t.Errorf("payload lost riding a batch: %+v", m1.SDO.Payload)
	}
	m2, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kind != KindRouted || m2.To != 9 || m2.SDO.Seq != 2 {
		t.Fatalf("routed member lost destination: %+v", m2)
	}
	if m2.SDO.Trace != 0x1234 {
		t.Errorf("routed member trace ID lost: %#x", m2.SDO.Trace)
	}
	m3, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m3.Kind != KindData || m3.SDO.Seq != 3 || m3.SDO.Payload != nil {
		t.Fatalf("member 3 mangled: %+v", m3)
	}
	// A frame after the batch must decode normally (pending fully drained).
	if err := client.SendFeedback(Feedback{PE: 4, RMax: 2.5}); err != nil {
		t.Fatal(err)
	}
	m4, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m4.Kind != KindFeedback || m4.Feedback.PE != 4 {
		t.Fatalf("post-batch frame mangled: %+v", m4)
	}
}

func TestHelloRecordsPeerFeatures(t *testing.T) {
	client, server := pair(t)
	if server.PeerSupportsBatch() {
		t.Fatal("batch support advertised before any hello")
	}
	if err := client.SendHello(FeatureBatch); err != nil {
		t.Fatal(err)
	}
	if err := client.SendSDO(sdo.SDO{Seq: 5, Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	// Recv consumes the hello internally and yields the data frame.
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindData || msg.SDO.Seq != 5 {
		t.Fatalf("hello leaked to the caller: %+v", msg)
	}
	if !server.PeerSupportsBatch() {
		t.Error("hello did not record FeatureBatch")
	}
	if client.PeerSupportsBatch() {
		t.Error("client assumed batch support from a silent peer")
	}
}

// TestBatchDecodeErrors drives the decoder with hand-built malformed batch
// frames; each must surface a protocol error, never a panic or a silent
// mis-parse.
func TestBatchDecodeErrors(t *testing.T) {
	// validMember is a minimal data member: kind + length + 36-byte body.
	validMember := func() []byte {
		body, err := encodeSDO(nil, sdo.SDO{Seq: 1, Origin: time.Unix(0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		m := []byte{byte(KindData), 0, 0, 0, byte(len(body))}
		return append(m, body...)
	}
	cases := []struct {
		name string
		body func() []byte
	}{
		{"short frame", func() []byte { return []byte{0, 0} }},
		{"zero count", func() []byte { return []byte{0, 0, 0, 0} }},
		{"count beyond limit", func() []byte {
			b := make([]byte, 4)
			binary.BigEndian.PutUint32(b, maxBatchMembers+1)
			return b
		}},
		{"truncated member header", func() []byte {
			return []byte{0, 0, 0, 1, byte(KindData), 0}
		}},
		{"member overruns frame", func() []byte {
			return []byte{0, 0, 0, 1, byte(KindData), 0, 0, 0, 100, 1, 2, 3}
		}},
		{"trailing bytes", func() []byte {
			b := append([]byte{0, 0, 0, 1}, validMember()...)
			return append(b, 0xEE)
		}},
		{"feedback member", func() []byte {
			m := []byte{byte(KindFeedback), 0, 0, 0, 12}
			m = append(m, make([]byte, 12)...)
			return append([]byte{0, 0, 0, 1}, m...)
		}},
		{"nested batch member", func() []byte {
			m := []byte{byte(KindBatch), 0, 0, 0, 4, 0, 0, 0, 1}
			return append([]byte{0, 0, 0, 1}, m...)
		}},
		{"corrupt member body", func() []byte {
			m := []byte{byte(KindData), 0, 0, 0, 3, 1, 2, 3}
			return append([]byte{0, 0, 0, 1}, m...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, framed := rawPair(t)
			body := tc.body()
			hdr := make([]byte, 5)
			hdr[0] = byte(KindBatch)
			binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
			if _, err := raw.Write(append(hdr, body...)); err != nil {
				t.Fatal(err)
			}
			if _, err := framed.Recv(); err == nil {
				t.Error("malformed batch accepted")
			}
		})
	}
}

func TestRecvRejectsBadHelloFrame(t *testing.T) {
	raw, framed := rawPair(t)
	hdr := []byte{byte(KindHello), 0, 0, 0, 2}
	if _, err := raw.Write(append(hdr, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestSendBatchRejectsOversizedTotal(t *testing.T) {
	client, _ := pair(t)
	huge := outFrame{kind: KindData, body: make([]byte, maxFrame/2)}
	if err := client.sendBatch([]outFrame{huge, huge, huge}, true); err == nil {
		t.Error("batch beyond maxFrame accepted")
	}
}

// TestResilientBatchesWhenNegotiated proves the end-to-end coalescing
// path: a batch-capable peer advertises support, and the writer folds an
// outbox backlog into KindBatch frames whose members all arrive.
func TestResilientBatchesWhenNegotiated(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		c, err := Dial(srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		// Stand in for the peer's hello (the counting server does not send
		// one); negotiation itself is covered by TestHelloRecordsPeerFeatures
		// and the spc partition tests where both ends run ResilientConns.
		c.setPeerFeatures(FeatureBatch)
		return c, nil
	}, ResilientOptions{BatchMax: 32, BatchLinger: 20 * time.Millisecond})
	defer rc.Close()

	const total = 256
	for i := 0; i < total; i++ {
		if err := rc.SendSDO(sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == total }, "batched members delivered")
	st := rc.Stats()
	if st.FramesSent != total || st.FramesDropped != 0 {
		t.Errorf("stats = %+v, want %d sent, 0 dropped", st, total)
	}
	if st.BatchesSent == 0 {
		t.Fatalf("no batch frames sent despite negotiated support: %+v", st)
	}
	if fill := float64(st.BatchedFrames) / float64(st.BatchesSent); fill < 2 {
		t.Errorf("mean batch fill %.1f < 2; writer is not coalescing", fill)
	}
}

// TestResilientFallsBackAgainstOldPeer is the interop case: the peer never
// sends a hello (an un-upgraded binary), so every SDO must go out as a
// plain per-SDO frame the old vocabulary understands.
func TestResilientFallsBackAgainstOldPeer(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{BatchMax: 32, BatchLinger: 5 * time.Millisecond})
	defer rc.Close()

	const total = 100
	for i := 0; i < total; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == total }, "fallback frames delivered")
	st := rc.Stats()
	if st.BatchesSent != 0 || st.BatchedFrames != 0 {
		t.Errorf("batches sent to a peer that never advertised support: %+v", st)
	}
	if st.FramesSent != total {
		t.Errorf("sent %d frames, want %d", st.FramesSent, total)
	}
}

// TestMidBatchSeverCountsMemberSDOs arms a byte-bounded sever so the
// connection dies inside a batch frame's write. Loss accounting must bill
// every member SDO of the failed batch — counting one drop per wire frame
// would leave most of the batch's SDOs unaccounted.
func TestMidBatchSeverCountsMemberSDOs(t *testing.T) {
	srv := newCountingServer(t)
	var current atomic.Pointer[FlakyConn]
	var asyncDrops atomic.Int64
	var nonData atomic.Int64
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		c := NewConn(f)
		c.setPeerFeatures(FeatureBatch)
		return c, nil
	}, ResilientOptions{
		BatchMax:   32,
		BackoffMin: 10 * time.Millisecond,
		OnDrop: func(k Kind, hops int, trace uint64) {
			asyncDrops.Add(1)
			if k != KindData {
				nonData.Add(1)
			}
		},
	})
	defer rc.Close()

	// Warm up so the connection is live, then note its flaky wrapper.
	if err := rc.SendSDO(sdo.SDO{Seq: 0, Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 1 }, "warmup frame")
	flaky := current.Load()

	// Stall the pipe, then flush one sacrificial frame into the stall: the
	// writer blocks inside its flush while the outbox fills behind it, so
	// the next burst drains as one batch. The sever quota lets the
	// sacrificial frame through and dies a few bytes into the batch.
	const sacrificialLen = 5 + 36 // frame header + empty-payload SDO body
	flaky.Stall(100 * time.Millisecond)
	flaky.SeverAfterBytes(sacrificialLen + 9)
	if err := rc.SendSDO(sdo.SDO{Seq: 1, Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the writer enter the stalled flush
	const batchSDOs = 16
	for i := 0; i < batchSDOs; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(2 + i), Origin: time.Now()}); err != nil {
			t.Fatalf("batch send %d: %v", i, err)
		}
	}

	// Every SDO of the severed batch must surface as an individual drop.
	waitFor(t, 5*time.Second, func() bool { return asyncDrops.Load() >= batchSDOs }, "per-member drop accounting")
	if got := asyncDrops.Load(); got != batchSDOs {
		t.Errorf("async drops = %d, want %d (one per member SDO)", got, batchSDOs)
	}
	if nonData.Load() != 0 {
		t.Errorf("%d non-data drops reported for a data-only batch", nonData.Load())
	}
	waitFor(t, 5*time.Second, func() bool { return rc.Stats().FramesDropped >= batchSDOs }, "stats count members")

	// The link must heal and deliver again after the mid-batch sever.
	waitFor(t, 5*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Seq: 99, Origin: time.Now()})
		return srv.frames.Load() > 2
	}, "post-sever delivery")
}

// TestLargeBatchGatheredWrite round-trips a batch big enough to take the
// net.Buffers (writev) path over real TCP: member payloads must arrive
// intact and in order, and a frame buffered before the gathered write
// must hit the wire first (the vec path flushes the bufio writer before
// bypassing it).
func TestLargeBatchGatheredWrite(t *testing.T) {
	client, server := pair(t)
	// A plain frame parked in the bufio writer, unflushed: the gathered
	// batch must not overtake it.
	first := sdo.SDO{Stream: 1, Seq: 1000, Origin: time.Unix(0, 1)}
	fb, err := encodeSDO(nil, first)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.writeFrame(KindData, fb, false); err != nil {
		t.Fatal(err)
	}

	const n = 64
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	members := make([]outFrame, n)
	total := 4
	for i := range members {
		members[i] = member(t, KindData, 0, sdo.SDO{
			Stream: 2, Seq: uint64(i), Origin: time.Unix(0, 1),
			Payload: append([]byte(nil), payload...), Bytes: len(payload),
		})
		total += 5 + len(members[i].body)
	}
	if total < vecMinBytes {
		t.Fatalf("test batch is %d bytes, below the %d gathered-write threshold", total, vecMinBytes)
	}
	if err := client.sendBatch(members, true); err != nil {
		t.Fatal(err)
	}

	m, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.SDO.Seq != 1000 {
		t.Fatalf("gathered batch overtook the buffered frame: first seq %d, want 1000", m.SDO.Seq)
	}
	for i := 0; i < n; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if m.Kind != KindData || m.SDO.Seq != uint64(i) {
			t.Fatalf("member %d arrived as kind %v seq %d", i, m.Kind, m.SDO.Seq)
		}
		got, ok := m.SDO.Payload.([]byte)
		if !ok || len(got) != len(payload) {
			t.Fatalf("member %d payload mangled: %T len %d", i, m.SDO.Payload, len(got))
		}
		for j := range got {
			if got[j] != payload[j] {
				t.Fatalf("member %d payload byte %d = %d, want %d", i, j, got[j], payload[j])
			}
		}
	}
	// A second gathered batch reuses the scratch; it must not carry stale
	// member references or headers.
	if err := client.sendBatch(members[:8], true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.SDO.Seq != uint64(i) {
			t.Fatalf("second batch member %d arrived with seq %d", i, m.SDO.Seq)
		}
	}
}
