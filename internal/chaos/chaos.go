// Package chaos is the deterministic fault harness: a seeded schedule of
// faults — PE panics, severed uplinks, node kill/restart cycles — replayed
// against a running deployment on its virtual clock. The paper's claim is
// not that faults never hurt, but that the system degrades and recovers
// instead of collapsing (§IV); this package makes that claim testable by
// making every fault run exactly reproducible: the same seed yields the
// same faults at the same virtual times, so a recovery regression is a
// deterministic test failure, not a flake.
package chaos

import (
	"fmt"
	"sort"

	"aces/internal/sim"
)

// Kind classifies one fault.
type Kind uint8

const (
	// PanicPE crashes the targeted PE's processor mid-SDO; the PE
	// supervisor is expected to recover it.
	PanicPE Kind = iota
	// SeverLink cuts the targeted uplink for Duration virtual seconds;
	// resilient transports are expected to reconnect when it heals.
	SeverLink
	// KillNode takes the targeted node down for Duration virtual seconds:
	// its process stops beating and its links drop, so peers should
	// declare it suspect/dead and route around it until it returns.
	KillNode
	// KillProcess permanently terminates the targeted process (no Duration
	// — it does not come back): the control-plane failover fault. Standby
	// controllers are expected to claim the next term; tree descendants to
	// re-parent.
	KillProcess
	// SeverControlLink cuts the targeted CONTROL link (dissemination-tree
	// edge) for Duration virtual seconds while data links stay up: target
	// frames and acks stop crossing the edge, so the subtree below should
	// ride its last applied epoch (stale-target safety) and re-parent or
	// re-sync when the edge heals.
	SeverControlLink
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PanicPE:
		return "panic_pe"
	case SeverLink:
		return "sever_link"
	case KillNode:
		return "kill_node"
	case KillProcess:
		return "kill_process"
	case SeverControlLink:
		return "sever_control_link"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault. At is virtual seconds from run start;
// Target is a PE ID (PanicPE), link index (SeverLink, SeverControlLink),
// node ID (KillNode) or process index (KillProcess); Duration is the
// outage length for the kinds that have one (KillProcess has none — the
// process never returns).
type Event struct {
	At       float64 `json:"at"`
	Kind     Kind    `json:"kind"`
	Target   int32   `json:"target"`
	Duration float64 `json:"duration,omitempty"`
}

// Schedule is a reproducible fault script: events sorted by fire time.
type Schedule struct {
	// Seed identifies the generation stream (0 for hand-written scripts).
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// End returns the virtual time at which the last fault has fully healed
// (fire time plus outage duration) — the earliest moment recovery can be
// judged. Zero for an empty schedule.
func (s Schedule) End() float64 {
	var end float64
	for _, e := range s.Events {
		if t := e.At + e.Duration; t > end {
			end = t
		}
	}
	return end
}

// Injector applies faults to a deployment. The harness separates the
// script (what happens when) from the mechanism (how a fault is applied
// to this particular cluster); tests and experiments supply the latter.
type Injector interface {
	// PanicPE arms one crash on PE pe's next processed SDO.
	PanicPE(pe int32)
	// SeverLink cuts link `link` for d virtual seconds.
	SeverLink(link int32, d float64)
	// KillNode takes node `node` down for d virtual seconds.
	KillNode(node int32, d float64)
	// KillProcess terminates process `proc` permanently.
	KillProcess(proc int32)
	// SeverControlLink cuts control link `link` for d virtual seconds.
	SeverControlLink(link int32, d float64)
}

// FuncInjector adapts closures to Injector; nil fields make the
// corresponding fault a no-op, so a harness can opt out of kinds its
// deployment cannot express.
type FuncInjector struct {
	OnPanicPE          func(pe int32)
	OnSeverLink        func(link int32, d float64)
	OnKillNode         func(node int32, d float64)
	OnKillProcess      func(proc int32)
	OnSeverControlLink func(link int32, d float64)
}

// PanicPE implements Injector.
func (f FuncInjector) PanicPE(pe int32) {
	if f.OnPanicPE != nil {
		f.OnPanicPE(pe)
	}
}

// SeverLink implements Injector.
func (f FuncInjector) SeverLink(link int32, d float64) {
	if f.OnSeverLink != nil {
		f.OnSeverLink(link, d)
	}
}

// KillNode implements Injector.
func (f FuncInjector) KillNode(node int32, d float64) {
	if f.OnKillNode != nil {
		f.OnKillNode(node, d)
	}
}

// KillProcess implements Injector.
func (f FuncInjector) KillProcess(proc int32) {
	if f.OnKillProcess != nil {
		f.OnKillProcess(proc)
	}
}

// SeverControlLink implements Injector.
func (f FuncInjector) SeverControlLink(link int32, d float64) {
	if f.OnSeverControlLink != nil {
		f.OnSeverControlLink(link, d)
	}
}

// Runner replays a schedule against virtual time. Not safe for concurrent
// use; one goroutine (typically the experiment's sampling loop) owns it.
type Runner struct {
	events []Event
	next   int
}

// NewRunner builds a runner over the schedule, sorting events by fire
// time (stable, so equal-time events keep script order).
func NewRunner(s Schedule) *Runner {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return &Runner{events: evs}
}

// Step fires every event due at or before virtual time now, in order, and
// returns the events fired this step (aliasing the runner's storage;
// valid until the next Step).
func (r *Runner) Step(now float64, inj Injector) []Event {
	start := r.next
	for r.next < len(r.events) && r.events[r.next].At <= now {
		e := r.events[r.next]
		r.next++
		switch e.Kind {
		case PanicPE:
			inj.PanicPE(e.Target)
		case SeverLink:
			inj.SeverLink(e.Target, e.Duration)
		case KillNode:
			inj.KillNode(e.Target, e.Duration)
		case KillProcess:
			inj.KillProcess(e.Target)
		case SeverControlLink:
			inj.SeverControlLink(e.Target, e.Duration)
		}
	}
	return r.events[start:r.next]
}

// Done reports whether every event has fired.
func (r *Runner) Done() bool { return r.next >= len(r.events) }

// Pending returns how many events have not fired yet.
func (r *Runner) Pending() int { return len(r.events) - r.next }

// GenConfig parameterizes Generate. Counts are exact; fire times and
// targets are drawn uniformly from the windows below.
type GenConfig struct {
	// Seed drives the deterministic draw.
	Seed int64
	// Start and End bound fault fire times (virtual seconds). Events are
	// placed in [Start, End); outages may heal after End.
	Start, End float64
	// Panics, Severs, Kills are the number of events of each kind.
	Panics, Severs, Kills int
	// ProcKills and CtrlSevers are the number of control-plane faults:
	// permanent process terminations and control-link severs.
	ProcKills, CtrlSevers int
	// PEs, Links, Nodes, Procs, CtrlLinks list the eligible targets per
	// kind. A kind with a positive count but no targets is an error.
	PEs, Links, Nodes, Procs, CtrlLinks []int32
	// OutageMin and OutageMax bound SeverLink/KillNode outage durations
	// (virtual seconds). OutageMax < OutageMin is an error.
	OutageMin, OutageMax float64
}

// Generate draws a reproducible schedule: the same config yields the same
// events, and distinct seeds yield independent scripts.
func Generate(cfg GenConfig) (Schedule, error) {
	if cfg.End <= cfg.Start {
		return Schedule{}, fmt.Errorf("chaos: window [%g, %g) is empty", cfg.Start, cfg.End)
	}
	if cfg.OutageMax < cfg.OutageMin || cfg.OutageMin < 0 {
		return Schedule{}, fmt.Errorf("chaos: bad outage bounds [%g, %g]", cfg.OutageMin, cfg.OutageMax)
	}
	if cfg.Panics > 0 && len(cfg.PEs) == 0 {
		return Schedule{}, fmt.Errorf("chaos: %d panics requested but no PE targets", cfg.Panics)
	}
	if cfg.Severs > 0 && len(cfg.Links) == 0 {
		return Schedule{}, fmt.Errorf("chaos: %d severs requested but no link targets", cfg.Severs)
	}
	if cfg.Kills > 0 && len(cfg.Nodes) == 0 {
		return Schedule{}, fmt.Errorf("chaos: %d kills requested but no node targets", cfg.Kills)
	}
	if cfg.ProcKills > 0 && len(cfg.Procs) == 0 {
		return Schedule{}, fmt.Errorf("chaos: %d process kills requested but no process targets", cfg.ProcKills)
	}
	if cfg.CtrlSevers > 0 && len(cfg.CtrlLinks) == 0 {
		return Schedule{}, fmt.Errorf("chaos: %d control severs requested but no control-link targets", cfg.CtrlSevers)
	}
	// One substream per kind (the kind value doubles as the substream id):
	// adding panics to a config does not perturb where the severs land.
	s := Schedule{Seed: cfg.Seed}
	draw := func(id uint64, n int, targets []int32, outage bool) {
		rng := sim.Substream(cfg.Seed, id)
		for i := 0; i < n; i++ {
			e := Event{
				At:     rng.Uniform(cfg.Start, cfg.End),
				Kind:   Kind(id),
				Target: targets[rng.Intn(len(targets))],
			}
			if outage {
				e.Duration = rng.Uniform(cfg.OutageMin, cfg.OutageMax)
			}
			s.Events = append(s.Events, e)
		}
	}
	draw(uint64(PanicPE), cfg.Panics, cfg.PEs, false)
	draw(uint64(SeverLink), cfg.Severs, cfg.Links, true)
	draw(uint64(KillNode), cfg.Kills, cfg.Nodes, true)
	draw(uint64(KillProcess), cfg.ProcKills, cfg.Procs, false)
	draw(uint64(SeverControlLink), cfg.CtrlSevers, cfg.CtrlLinks, true)
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}
