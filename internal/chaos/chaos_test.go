package chaos

import (
	"reflect"
	"testing"
)

func TestRunnerFiresInOrderOnce(t *testing.T) {
	sched := Schedule{Events: []Event{
		{At: 3, Kind: KillNode, Target: 2, Duration: 1},
		{At: 1, Kind: PanicPE, Target: 0},
		{At: 2, Kind: SeverLink, Target: 1, Duration: 0.5},
	}}
	var fired []string
	inj := FuncInjector{
		OnPanicPE:   func(pe int32) { fired = append(fired, "panic") },
		OnSeverLink: func(l int32, d float64) { fired = append(fired, "sever") },
		OnKillNode:  func(n int32, d float64) { fired = append(fired, "kill") },
	}
	r := NewRunner(sched)
	if r.Done() || r.Pending() != 3 {
		t.Fatalf("fresh runner: done=%v pending=%d", r.Done(), r.Pending())
	}
	if got := r.Step(0.5, inj); len(got) != 0 {
		t.Errorf("Step before first event fired %d events", len(got))
	}
	if got := r.Step(2.5, inj); len(got) != 2 {
		t.Errorf("Step(2.5) fired %d events, want 2", len(got))
	}
	// Stepping backwards-in-place fires nothing twice.
	if got := r.Step(2.5, inj); len(got) != 0 {
		t.Errorf("repeat Step refired %d events", len(got))
	}
	r.Step(10, inj)
	if !r.Done() {
		t.Errorf("runner not done after final step")
	}
	want := []string{"panic", "sever", "kill"}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("fired = %v, want %v", fired, want)
	}
}

func TestFuncInjectorNilFieldsAreNoOps(t *testing.T) {
	r := NewRunner(Schedule{Events: []Event{
		{At: 0, Kind: PanicPE}, {At: 0, Kind: SeverLink}, {At: 0, Kind: KillNode},
	}})
	r.Step(1, FuncInjector{}) // must not panic
	if !r.Done() {
		t.Errorf("events not consumed")
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	cfg := GenConfig{
		Seed: 77, Start: 5, End: 20,
		Panics: 3, Severs: 2, Kills: 1,
		PEs: []int32{0, 1, 2}, Links: []int32{0, 1}, Nodes: []int32{2},
		OutageMin: 1, OutageMax: 4,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config produced different schedules")
	}
	if len(a.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(a.Events))
	}
	for i, e := range a.Events {
		if e.At < cfg.Start || e.At >= cfg.End {
			t.Errorf("event %d at %g outside [%g, %g)", i, e.At, cfg.Start, cfg.End)
		}
		if i > 0 && a.Events[i-1].At > e.At {
			t.Errorf("events not sorted at %d", i)
		}
		switch e.Kind {
		case SeverLink, KillNode:
			if e.Duration < cfg.OutageMin || e.Duration >= cfg.OutageMax {
				t.Errorf("event %d outage %g outside [%g, %g)", i, e.Duration, cfg.OutageMin, cfg.OutageMax)
			}
		case PanicPE:
			if e.Duration != 0 {
				t.Errorf("panic event %d has nonzero duration", i)
			}
		}
	}
	cfg.Seed = 78
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Errorf("different seeds produced identical schedules")
	}
	if a.End() <= 0 {
		t.Errorf("End() = %g, want > 0", a.End())
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Seed: 1, Start: 5, End: 5},
		{Seed: 1, Start: 0, End: 1, OutageMin: 2, OutageMax: 1},
		{Seed: 1, Start: 0, End: 1, Panics: 1},
		{Seed: 1, Start: 0, End: 1, Severs: 1},
		{Seed: 1, Start: 0, End: 1, Kills: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestScheduleEndIncludesOutage(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 1, Kind: PanicPE},
		{At: 2, Kind: SeverLink, Duration: 5},
		{At: 4, Kind: KillNode, Duration: 1},
	}}
	if got := s.End(); got != 7 {
		t.Errorf("End() = %g, want 7", got)
	}
	if got := (Schedule{}).End(); got != 0 {
		t.Errorf("empty End() = %g, want 0", got)
	}
}
