package chaos

import (
	"reflect"
	"testing"
)

func TestRunnerFiresInOrderOnce(t *testing.T) {
	sched := Schedule{Events: []Event{
		{At: 3, Kind: KillNode, Target: 2, Duration: 1},
		{At: 1, Kind: PanicPE, Target: 0},
		{At: 2, Kind: SeverLink, Target: 1, Duration: 0.5},
	}}
	var fired []string
	inj := FuncInjector{
		OnPanicPE:   func(pe int32) { fired = append(fired, "panic") },
		OnSeverLink: func(l int32, d float64) { fired = append(fired, "sever") },
		OnKillNode:  func(n int32, d float64) { fired = append(fired, "kill") },
	}
	r := NewRunner(sched)
	if r.Done() || r.Pending() != 3 {
		t.Fatalf("fresh runner: done=%v pending=%d", r.Done(), r.Pending())
	}
	if got := r.Step(0.5, inj); len(got) != 0 {
		t.Errorf("Step before first event fired %d events", len(got))
	}
	if got := r.Step(2.5, inj); len(got) != 2 {
		t.Errorf("Step(2.5) fired %d events, want 2", len(got))
	}
	// Stepping backwards-in-place fires nothing twice.
	if got := r.Step(2.5, inj); len(got) != 0 {
		t.Errorf("repeat Step refired %d events", len(got))
	}
	r.Step(10, inj)
	if !r.Done() {
		t.Errorf("runner not done after final step")
	}
	want := []string{"panic", "sever", "kill"}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("fired = %v, want %v", fired, want)
	}
}

func TestFuncInjectorNilFieldsAreNoOps(t *testing.T) {
	r := NewRunner(Schedule{Events: []Event{
		{At: 0, Kind: PanicPE}, {At: 0, Kind: SeverLink}, {At: 0, Kind: KillNode},
	}})
	r.Step(1, FuncInjector{}) // must not panic
	if !r.Done() {
		t.Errorf("events not consumed")
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	cfg := GenConfig{
		Seed: 77, Start: 5, End: 20,
		Panics: 3, Severs: 2, Kills: 1,
		PEs: []int32{0, 1, 2}, Links: []int32{0, 1}, Nodes: []int32{2},
		OutageMin: 1, OutageMax: 4,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config produced different schedules")
	}
	if len(a.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(a.Events))
	}
	for i, e := range a.Events {
		if e.At < cfg.Start || e.At >= cfg.End {
			t.Errorf("event %d at %g outside [%g, %g)", i, e.At, cfg.Start, cfg.End)
		}
		if i > 0 && a.Events[i-1].At > e.At {
			t.Errorf("events not sorted at %d", i)
		}
		switch e.Kind {
		case SeverLink, KillNode:
			if e.Duration < cfg.OutageMin || e.Duration >= cfg.OutageMax {
				t.Errorf("event %d outage %g outside [%g, %g)", i, e.Duration, cfg.OutageMin, cfg.OutageMax)
			}
		case PanicPE:
			if e.Duration != 0 {
				t.Errorf("panic event %d has nonzero duration", i)
			}
		}
	}
	cfg.Seed = 78
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Errorf("different seeds produced identical schedules")
	}
	if a.End() <= 0 {
		t.Errorf("End() = %g, want > 0", a.End())
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Seed: 1, Start: 5, End: 5},
		{Seed: 1, Start: 0, End: 1, OutageMin: 2, OutageMax: 1},
		{Seed: 1, Start: 0, End: 1, Panics: 1},
		{Seed: 1, Start: 0, End: 1, Severs: 1},
		{Seed: 1, Start: 0, End: 1, Kills: 1},
		{Seed: 1, Start: 0, End: 1, ProcKills: 1},
		{Seed: 1, Start: 0, End: 1, CtrlSevers: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// The control-plane fault kinds: generated on their own substreams (so
// adding them never perturbs the data-plane faults), dispatched to the
// right injector hooks, and KillProcess carries no outage — the process
// never comes back.
func TestControlPlaneFaultKinds(t *testing.T) {
	base := GenConfig{
		Seed: 9, Start: 2, End: 10,
		Panics: 2, Severs: 1, Kills: 1,
		PEs: []int32{0, 1}, Links: []int32{0}, Nodes: []int32{1},
		OutageMin: 0.5, OutageMax: 2,
	}
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := base
	ctrl.ProcKills = 2
	ctrl.CtrlSevers = 1
	ctrl.Procs = []int32{0, 1, 2}
	ctrl.CtrlLinks = []int32{0, 1}
	b, err := Generate(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != len(a.Events)+3 {
		t.Fatalf("got %d events, want %d", len(b.Events), len(a.Events)+3)
	}
	// Substream isolation: the data-plane events must be bit-identical
	// with and without the control-plane kinds in the config.
	strip := func(evs []Event) []Event {
		var out []Event
		for _, e := range evs {
			if e.Kind != KillProcess && e.Kind != SeverControlLink {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(strip(b.Events), a.Events) {
		t.Errorf("adding control-plane faults perturbed the data-plane schedule")
	}
	var kills, severs int
	for _, e := range b.Events {
		switch e.Kind {
		case KillProcess:
			kills++
			if e.Duration != 0 {
				t.Errorf("KillProcess carries outage %g, want 0 (permanent)", e.Duration)
			}
			if e.Kind.String() != "kill_process" {
				t.Errorf("String() = %q", e.Kind.String())
			}
		case SeverControlLink:
			severs++
			if e.Duration < ctrl.OutageMin || e.Duration >= ctrl.OutageMax {
				t.Errorf("SeverControlLink outage %g outside [%g, %g)", e.Duration, ctrl.OutageMin, ctrl.OutageMax)
			}
			if e.Kind.String() != "sever_control_link" {
				t.Errorf("String() = %q", e.Kind.String())
			}
		}
	}
	if kills != 2 || severs != 1 {
		t.Fatalf("kills=%d severs=%d, want 2/1", kills, severs)
	}
	// Dispatch: the runner routes the new kinds to the new hooks, and nil
	// hooks stay no-ops.
	var gotKill, gotSever []int32
	r := NewRunner(b)
	r.Step(100, FuncInjector{
		OnKillProcess:      func(p int32) { gotKill = append(gotKill, p) },
		OnSeverControlLink: func(l int32, d float64) { gotSever = append(gotSever, l) },
	})
	if len(gotKill) != 2 || len(gotSever) != 1 {
		t.Errorf("dispatched kills=%d severs=%d, want 2/1", len(gotKill), len(gotSever))
	}
	r2 := NewRunner(b)
	r2.Step(100, FuncInjector{}) // must not panic
	if !r2.Done() {
		t.Errorf("nil-hook runner left events pending")
	}
}

func TestScheduleEndIncludesOutage(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 1, Kind: PanicPE},
		{At: 2, Kind: SeverLink, Duration: 5},
		{At: 4, Kind: KillNode, Duration: 1},
	}}
	if got := s.End(); got != 7 {
		t.Errorf("End() = %g, want 7", got)
	}
	if got := (Schedule{}).End(); got != 0 {
		t.Errorf("empty End() = %g, want 0", got)
	}
}
