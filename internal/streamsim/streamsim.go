// Package streamsim is the calibrated simulator of the paper's evaluation
// (§VI-A): a discrete-time model of a distributed stream processing system
// in which control runs every Δt (the paper's sampling interval) while
// source arrivals and PE state switches evolve in continuous time on the
// event kernel.
//
// Each tick the engine (1) snapshots every PE's buffer, token balance and
// downstream feedback bound, (2) plans per-node CPU via the policy's
// planner, (3) lets PEs consume SDOs against their CPU budgets with
// carry-over of partially processed work, (4) forwards outputs under the
// policy's discipline (max-flow / fire-and-forget / min-flow blocking),
// staging them so data moves one hop per tick, and (5) runs the LQR flow
// controller and publishes r_max advertisements upstream for the ACES
// family. Metrics follow §III-A/§IV: weighted throughput at egress,
// end-to-end latency, split loss accounting and stability indicators.
package streamsim

import (
	"fmt"
	"math"

	"aces/internal/control"
	"aces/internal/controller"
	"aces/internal/graph"
	"aces/internal/metrics"
	"aces/internal/obs"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Topo is the deployment to simulate (required, must validate).
	Topo *graph.Topology
	// Policy selects the flow/CPU discipline (required).
	Policy policy.Policy
	// CPU are the tier-1 targets c̄_j, indexed by PE (required; obtain from
	// optimize.Solve or supply externally).
	CPU []float64
	// Dt is the control period Δt in seconds (default 0.010).
	Dt float64
	// Duration is the simulated horizon in seconds (default 30).
	Duration float64
	// Warmup discards metrics before this time (default Duration/5).
	Warmup float64
	// Seed drives all randomness (sources, service models).
	Seed int64
	// B0Frac positions the buffer target b₀ = B0Frac × B (default 0.5,
	// the paper's b₀ = B/2).
	B0Frac float64
	// QWeight/RWeight tune the LQR design (defaults from
	// control.DefaultDesign).
	QWeight, RWeight float64
	// BurstTicks is the token-bucket depth in ticks of earnings
	// (default 40 — 0.4 s of banked entitlement at the default Δt, the
	// memory that lets ACES ride out state-dwell bursts).
	BurstTicks float64
	// SampleEvery is the stability-series sampling period in seconds
	// (default 0.1).
	SampleEvery float64
	// CostAlpha is the smoothing factor of the harmonic cost tracker
	// feeding the flow controller (default 0.35): larger tracks state
	// flips faster (fewer overflow drops at small buffers), smaller
	// advertises steadier rates.
	CostAlpha float64
	// LinkCapacity caps each node's EGRESS network bandwidth in SDOs/sec
	// for inter-node traffic (the paper manages "processor and network"
	// resources; intra-node delivery is free). 0 = unlimited (default).
	// SDOs exceeding the per-tick budget are dropped and counted as
	// in-flight loss.
	LinkCapacity float64
	// NetDelay adds an inter-node transit delay in seconds (rounded to
	// whole ticks) on top of the store-and-forward tick. 0 = default.
	NetDelay float64
	// Tracer enables per-SDO tracing in simulated time: ingress SDOs are
	// sampled, one span is recorded per hop, and losses end the trace —
	// the same span model the live runtime records, so traces from both
	// substrates are comparable. nil disables tracing.
	Tracer *obs.Tracer
	// Telemetry, when set, receives per-PE gauges (buffer occupancy,
	// token level, r_max) sampled on the stability cadence, with snapshot
	// frames flushed to the registry's sink at simulated timestamps.
	Telemetry *obs.Registry
}

func (c *Config) fillDefaults() error {
	if c.Topo == nil {
		return fmt.Errorf("streamsim: Topo is required")
	}
	if err := c.Topo.Validate(); err != nil {
		return fmt.Errorf("streamsim: %w", err)
	}
	if c.Policy == 0 {
		return fmt.Errorf("streamsim: Policy is required")
	}
	if len(c.CPU) != c.Topo.NumPEs() {
		return fmt.Errorf("streamsim: CPU targets have %d entries, topology has %d PEs", len(c.CPU), c.Topo.NumPEs())
	}
	if c.Dt <= 0 {
		c.Dt = 0.010
	}
	if c.Duration <= 0 {
		c.Duration = 30
	}
	if c.Warmup <= 0 || c.Warmup >= c.Duration {
		c.Warmup = c.Duration / 5
	}
	if c.B0Frac <= 0 || c.B0Frac >= 1 {
		c.B0Frac = 0.5
	}
	if c.QWeight <= 0 {
		c.QWeight = 1
	}
	if c.RWeight <= 0 {
		c.RWeight = 8
	}
	if c.BurstTicks < 1 {
		c.BurstTicks = 40
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 0.1
	}
	if c.CostAlpha <= 0 || c.CostAlpha > 1 {
		c.CostAlpha = 0.35
	}
	return nil
}

// item is one buffered SDO: the origin timestamp of its ancestral input
// SDO plus the processing depth already invested. trace/enq carry the
// observability sample (trace ID and buffer-entry time; trace 0 =
// unsampled).
type item struct {
	origin float64
	hops   int32
	trace  uint64
	enq    float64
}

// fifo is a slice-backed FIFO with head compaction.
type fifo struct {
	items []item
	head  int
}

func (q *fifo) len() int { return len(q.items) - q.head }

func (q *fifo) push(it item) { q.items = append(q.items, it) }

func (q *fifo) pop() item {
	it := q.items[q.head]
	q.head++
	if q.head > 256 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

// peState is the runtime state of one PE.
type peState struct {
	id     sdo.PEID
	node   sdo.NodeID
	weight float64
	cap    int
	buf    fifo
	// pending holds SDOs staged for delivery at tick end (one hop per
	// tick).
	pending []item
	svc     *workload.Service
	bucket  *controller.TokenBucket
	fc      *control.FlowController
	// partial is CPU-seconds already invested in the head SDO.
	partial float64
	// costNow caches the per-SDO cost sampled at the current tick.
	costNow float64
	// overhead is the paper's b in h_j(c̄) = a·c̄ − b (SDOs/sec of fixed
	// rate tax): each tick the PE runs, setup costs consume
	// overhead·Δt·cost of budget before any SDO is processed.
	overhead float64
	// invCostSmooth is a harmonic EWMA of the per-SDO cost (an EWMA of
	// 1/costNow) used by the flow controller. Two reasons: the raw
	// two-state cost jumps 10× on a state flip, and advertising from the
	// instantaneous value whipsaws upstream senders; and a backlogged PE's
	// sustainable rate follows E[1/T] (the harmonic mean), not 1/E[T] —
	// an arithmetic smoother would understate capacity ~3× with the
	// paper's T0/T1 and permanently throttle the pipeline. The paper's
	// tier 2 uses "rate tracking mechanisms" for the same purpose.
	invCostSmooth float64
	blocked       bool
	// join marks a PE that consumes one SDO from each upstream per firing;
	// joinBufs then holds one queue per upstream (indexed by slot) and
	// pendSlots the per-slot staging areas, while buf/pending sit unused.
	join      bool
	joinBufs  []fifo
	pendSlots [][]item
	// slotOf maps an upstream PE to its input slot on a join PE.
	slotOf map[sdo.PEID]int
	// lastSlotVac is the per-slot counterpart of lastVacancy for join PEs.
	lastSlotVac []int
	// Telemetry handles (nil when Config.Telemetry is unset).
	gOcc, gTokens, gRmax *obs.Gauge
	// lastVacancy is this PE's buffer vacancy at the end of the previous
	// tick. Lock-Step senders block on this delayed value (plus the
	// instantaneous value as an overflow safety): a distributed blocking
	// sender learns of freed space one propagation delay late, exactly
	// like the ACES feedback path. Giving Lock-Step instantaneous remote
	// buffer knowledge would hand it an unrealizable advantage.
	lastVacancy int
	// down caches downstream IDs as int32 for the feedback board.
	down []int32
}

func (p *peState) vacancy() int {
	if p.join {
		v := p.cap
		for i := range p.joinBufs {
			if sv := p.slotVacancy(i); sv < v {
				v = sv
			}
		}
		return v
	}
	return p.cap - p.buf.len() - len(p.pending)
}

// slotVacancy is the free space of one join input queue.
func (p *peState) slotVacancy(slot int) int {
	return p.cap - p.joinBufs[slot].len() - len(p.pendSlots[slot])
}

// available counts immediately processible units: buffered SDOs for merge
// PEs, complete input tuples for join PEs.
func (p *peState) available() int {
	if !p.join {
		return p.buf.len()
	}
	n := p.joinBufs[0].len()
	for i := 1; i < len(p.joinBufs); i++ {
		if l := p.joinBufs[i].len(); l < n {
			n = l
		}
	}
	return n
}

// ctrlOcc is the congestion signal for the controller: the fullest queue
// (it overflows first).
func (p *peState) ctrlOcc() int {
	if !p.join {
		return p.buf.len()
	}
	n := 0
	for i := range p.joinBufs {
		if l := p.joinBufs[i].len(); l > n {
			n = l
		}
	}
	return n
}

// consume removes one processible unit and returns the item carrying
// latency/waste accounting: for joins, the origin of the OLDEST component
// (end-to-end latency reflects the slowest-arriving input) and the deepest
// hop count. A join's output inherits the first sampled component's trace
// (one trace continues through the join; siblings end silently rather
// than double-counting the tuple).
func (p *peState) consume() item {
	if !p.join {
		return p.buf.pop()
	}
	out := item{origin: math.Inf(1)}
	for i := range p.joinBufs {
		it := p.joinBufs[i].pop()
		if it.origin < out.origin {
			out.origin = it.origin
		}
		if it.hops > out.hops {
			out.hops = it.hops
		}
		if out.trace == 0 && it.trace != 0 {
			out.trace = it.trace
			out.enq = it.enq
		}
	}
	return out
}

// admitLimit is the occupancy above which arrivals are refused: the full
// capacity normally, 80% of it under load shedding (the [19]-style
// threshold policy).
func (p *peState) admitLimit(shed bool) int {
	if shed {
		return p.cap * 8 / 10
	}
	return p.cap
}

// admits reports whether one more SDO may enter the buffer.
func (p *peState) admits(shed bool) bool {
	return p.buf.len()+len(p.pending) < p.admitLimit(shed)
}

// Engine runs one configured simulation.
type Engine struct {
	cfg   Config
	topo  *graph.Topology
	sim   *sim.Simulator
	pes   []*peState
	nodes [][]*peState
	fb    *controller.Feedback
	col   *metrics.Collector
	// windowWT accumulates weighted deliveries within the current
	// stability-sampling window.
	windowWT float64
	// delivered counts post-warmup egress SDOs per PE (per-branch
	// throughput for the Fig. 2 experiment).
	delivered []int64
	// scratch buffers reused across ticks (step() runs 100×/simulated
	// second × nodes; per-tick allocation would dominate the profile).
	scratchTicks  [][]controller.PETick
	scratchAllocs [][]float64
	// Network model state: per-node remaining egress budget this tick and
	// the transit ring buffer (slot per tick of delay).
	netBudget []float64
	netRing   [][]netItem
	tickNo    int
	netDrops  int64
	// retargets counts the tier-1 target sets StartRetarget installed.
	retargets int
	// Observability (nil when disabled).
	tracer *obs.Tracer
	reg    *obs.Registry
}

// netItem is an SDO in transit between nodes.
type netItem struct {
	it   item
	dst  sdo.PEID
	from sdo.PEID
}

// New builds an engine; the configuration is validated and defaulted.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	t := cfg.Topo
	e := &Engine{
		cfg:    cfg,
		topo:   t,
		sim:    sim.New(),
		fb:     controller.NewFeedback(),
		col:    metrics.NewCollector(cfg.Warmup),
		tracer: cfg.Tracer,
		reg:    cfg.Telemetry,
	}
	e.nodes = make([][]*peState, t.NumNodes)
	e.pes = make([]*peState, t.NumPEs())
	e.delivered = make([]int64, t.NumPEs())
	for j := 0; j < t.NumPEs(); j++ {
		pe := &t.PEs[j]
		bufCap := t.BufferSize(sdo.PEID(j))
		ps := &peState{
			id:       sdo.PEID(j),
			node:     pe.Node,
			weight:   pe.Weight,
			cap:      bufCap,
			overhead: pe.Overhead,
			svc:      workload.NewService(pe.Service, sim.Substream(cfg.Seed, uint64(j)+1000)),
			bucket:   controller.NewTokenBucket(cfg.CPU[j], cfg.BurstTicks),
		}
		if pe.Join {
			ups := t.Up(sdo.PEID(j))
			ps.join = true
			ps.joinBufs = make([]fifo, len(ups))
			ps.pendSlots = make([][]item, len(ups))
			ps.slotOf = make(map[sdo.PEID]int, len(ups))
			for slot, u := range ups {
				ps.slotOf[u] = slot
			}
		}
		for _, d := range t.Down(sdo.PEID(j)) {
			ps.down = append(ps.down, int32(d))
		}
		if e.reg != nil {
			labels := obs.Labels{"pe": fmt.Sprint(j), "node": fmt.Sprint(pe.Node)}
			ps.gOcc = e.reg.Gauge("buffer_occupancy", labels)
			ps.gTokens = e.reg.Gauge("tokens", labels)
			ps.gRmax = e.reg.Gauge("rmax", labels)
		}
		if cfg.Policy.UsesFeedback() {
			b0 := cfg.B0Frac * float64(bufCap)
			gains, err := control.Design(control.DesignConfig{
				Delay:     2,
				QWeight:   cfg.QWeight,
				RWeight:   cfg.RWeight,
				Smoothing: 1,
				B0:        b0,
			})
			if err != nil {
				return nil, fmt.Errorf("streamsim: PE %d gain design: %w", j, err)
			}
			fc, err := control.NewFlowController(gains, 0)
			if err != nil {
				return nil, fmt.Errorf("streamsim: PE %d controller: %w", j, err)
			}
			ps.fc = fc
		}
		e.pes[j] = ps
		e.nodes[pe.Node] = append(e.nodes[pe.Node], ps)
	}
	if cfg.LinkCapacity > 0 {
		e.netBudget = make([]float64, t.NumNodes)
	}
	if cfg.NetDelay > 0 {
		slots := int(math.Round(cfg.NetDelay/cfg.Dt)) + 1
		e.netRing = make([][]netItem, slots)
	}
	// Sources: continuous-time arrival processes on the event kernel.
	for si, src := range t.Sources {
		proc, err := src.Burst.Build(src.Rate, sim.Substream(cfg.Seed, uint64(si)+5000))
		if err != nil {
			return nil, fmt.Errorf("streamsim: source %d: %w", si, err)
		}
		target := e.pes[src.Target]
		shed := cfg.Policy == policy.LoadShed
		var arrive func()
		arrive = func() {
			now := e.sim.Now()
			it := item{origin: now}
			if tr := e.tracer; tr != nil {
				if id := tr.SampleIngress(); id != 0 {
					it.trace = id
					it.enq = now
				}
			}
			if target.admits(shed) {
				target.buf.push(it)
			} else {
				e.col.InputDrop(now)
				ev := obs.EventDrop
				if shed {
					ev = obs.EventShed
				}
				e.traceDrop(it, target, now, ev)
			}
			e.sim.After(proc.NextInterval(), arrive)
		}
		e.sim.After(proc.NextInterval(), arrive)
	}
	return e, nil
}

// Run executes the simulation and returns the metrics report.
func (e *Engine) Run() metrics.Report {
	dt := e.cfg.Dt
	sampleTicks := int(math.Max(1, math.Round(e.cfg.SampleEvery/dt)))
	tick := 0
	stop := e.sim.Every(dt, func(now float64) {
		e.step(now)
		tick++
		if tick%sampleTicks == 0 {
			e.col.ThroughputSample(now, e.windowWT/(float64(sampleTicks)*dt))
			e.windowWT = 0
			for _, ps := range e.pes {
				e.col.BufferSample(now, float64(ps.buf.len()))
				if ps.gOcc != nil {
					ps.gOcc.Set(float64(ps.ctrlOcc()))
					ps.gTokens.Set(ps.bucket.Level())
				}
			}
			if e.reg != nil {
				e.reg.Flush(now)
			}
		}
	})
	e.sim.RunUntil(e.cfg.Duration)
	stop()
	return e.col.Finalize(e.cfg.Duration)
}

// step advances one control tick at time now.
func (e *Engine) step(now float64) {
	pol := e.cfg.Policy
	dt := e.cfg.Dt
	e.tickNo++
	if e.netBudget != nil {
		for n := range e.netBudget {
			e.netBudget[n] = e.cfg.LinkCapacity * dt
		}
	}
	if e.netRing != nil {
		slot := e.tickNo % len(e.netRing)
		due := e.netRing[slot]
		e.netRing[slot] = due[:0]
		for _, ni := range due {
			e.deliverLocal(e.pes[ni.from], e.pes[ni.dst], ni.it, now)
		}
	}

	// Phase 1: per-PE snapshots (cost, blocked state) and per-node plans.
	if e.scratchTicks == nil {
		e.scratchTicks = make([][]controller.PETick, len(e.nodes))
		e.scratchAllocs = make([][]float64, len(e.nodes))
	}
	allocs := e.scratchAllocs
	for n, peers := range e.nodes {
		// Re-size on mismatch: MovePE changes node populations mid-run.
		if len(e.scratchTicks[n]) != len(peers) {
			e.scratchTicks[n] = make([]controller.PETick, len(peers))
		}
		ticks := e.scratchTicks[n]
		for i, ps := range peers {
			ps.costNow = ps.svc.CostAt(now)
			if ps.invCostSmooth == 0 {
				ps.invCostSmooth = 1 / ps.svc.Params().EffectiveCost()
			}
			ps.invCostSmooth = e.cfg.CostAlpha/ps.costNow + (1-e.cfg.CostAlpha)*ps.invCostSmooth
			mult := ps.svc.Params().MeanMult
			occ := float64(ps.ctrlOcc())
			work := (float64(ps.available())*ps.costNow - ps.partial) / dt
			if work < 0 {
				work = 0
			}
			cap := math.Inf(1)
			switch pol {
			case policy.ACES, policy.ACESStrictCPU:
				bound := e.fb.OutputBound(ps.down)
				cap = controller.RateToCPU(bound, ps.costNow, mult, dt)
			case policy.ACESMinFlow:
				bound := e.fb.MinBound(ps.down)
				cap = controller.RateToCPU(bound, ps.costNow, mult, dt)
			}
			ps.blocked = false
			if pol.Blocking() && len(ps.down) > 0 && ps.available() > 0 {
				for _, d := range ps.down {
					if e.lastVacancyFor(ps, e.pes[d]) < 1 || e.slotVacancyFor(ps, e.pes[d]) < 1 {
						ps.blocked = true
						break
					}
				}
			}
			ticks[i] = controller.PETick{
				Target:    e.cfg.CPU[ps.id],
				Tokens:    ps.bucket.Level(),
				Occupancy: occ,
				Work:      work,
				Cap:       cap,
				Blocked:   ps.blocked,
			}
		}
		switch pol {
		case policy.ACES, policy.ACESMinFlow:
			allocs[n] = controller.PlanACES(ticks, 1)
		case policy.ACESStrictCPU:
			// Fold the feedback cap into work so strict enforcement still
			// honours Eq. 8.
			for i := range ticks {
				if ticks[i].Cap < ticks[i].Work {
					ticks[i].Work = ticks[i].Cap
				}
			}
			allocs[n] = controller.PlanStrict(ticks, 1)
		case policy.UDP, policy.LoadShed:
			// System 2 (and the load-shedding comparator) use traditional
			// strict/velocity enforcement (§II):
			// each PE gets at most its target each tick and unused slices
			// are lost — no banking. Token accumulation is an ACES
			// mechanism, not a baseline one.
			allocs[n] = controller.PlanStrict(ticks, 1)
		default:
			// System 3 (Lock-Step): targets enforced per tick; only the
			// slices of sleeping (blocked) PEs are redistributed. No
			// banking either.
			allocs[n] = controller.PlanLockStep(ticks, 1)
		}
	}

	// Phase 2: processing against the granted budgets.
	for n, peers := range e.nodes {
		for i, ps := range peers {
			alloc := allocs[n][i]
			ps.bucket.Refill()
			ps.bucket.Spend(alloc)
			if alloc <= 0 || ps.blocked {
				continue
			}
			budget := alloc * dt
			if ps.overhead > 0 && ps.available() > 0 {
				// Eq. 6's b: per-invocation setup tax ("the overhead involved
				// in setting up the data structures of the PE, the overhead
				// in function calls etc." — footnote 3), charged once per
				// active tick so h(c) = c/T − b holds on average.
				budget -= ps.overhead * ps.costNow * dt
				if budget < 0 {
					budget = 0
				}
			}
			for budget > 0 && ps.available() > 0 {
				if pol.Blocking() {
					// Re-check: a co-located upstream peer may have filled a
					// shared downstream buffer earlier in this tick.
					full := false
					for _, d := range ps.down {
						if e.lastVacancyFor(ps, e.pes[d]) < 1 || e.slotVacancyFor(ps, e.pes[d]) < 1 {
							full = true
							break
						}
					}
					if full {
						ps.blocked = true
						break
					}
				}
				need := ps.costNow - ps.partial
				if budget < need {
					ps.partial += budget
					budget = 0
					break
				}
				budget -= need
				ps.partial = 0
				it := ps.consume()
				e.emit(ps, it, now)
			}
		}
	}

	// Phase 3: flush staged deliveries (one hop per tick) and record the
	// end-of-tick vacancy senders will see next tick.
	for _, ps := range e.pes {
		if ps.join {
			if ps.lastSlotVac == nil {
				ps.lastSlotVac = make([]int, len(ps.joinBufs))
			}
			for slot := range ps.pendSlots {
				for _, it := range ps.pendSlots[slot] {
					ps.joinBufs[slot].push(it)
				}
				ps.pendSlots[slot] = ps.pendSlots[slot][:0]
				ps.lastSlotVac[slot] = ps.slotVacancy(slot)
			}
		} else {
			for _, it := range ps.pending {
				ps.buf.push(it)
			}
			ps.pending = ps.pending[:0]
		}
		ps.lastVacancy = ps.vacancy()
	}

	// Phase 4: flow-control advertisements for the next tick.
	if pol.UsesFeedback() {
		for _, ps := range e.pes {
			// ρ_j(n): the PE's sustainable drain rate in SDOs per tick. The
			// base is the tier-1 entitlement c̄; banked token-bucket surplus
			// is folded in over a short horizon so a PE that was throttled
			// (and accumulated entitlement) advertises the burst capacity it
			// genuinely has — without this, the [·]⁺ asymmetry of Eq. 7
			// makes advertisements systematically undershoot and the
			// pipeline admits less than its long-term capacity.
			cpuRate := e.cfg.CPU[ps.id]
			if surplus := ps.bucket.Level() - cpuRate; surplus > 0 {
				cpuRate += surplus / 5
			}
			rho := cpuRate * dt * ps.invCostSmooth
			// Physical clamp: free space plus one tick of drain.
			ps.fc.SetMaxRate(float64(ps.vacancy()) + rho)
			rmax := ps.fc.Update(rho, float64(ps.ctrlOcc()))
			if ps.gRmax != nil {
				ps.gRmax.Set(rmax)
			}
			e.fb.Publish(int32(ps.id), rmax)
		}
	}
}

// slotVacancyFor returns the free space the sender sees at dst: the whole
// buffer for merge PEs, the sender's own input slot for join PEs.
func (e *Engine) slotVacancyFor(sender, dst *peState) int {
	if dst.join {
		return dst.slotVacancy(dst.slotOf[sender.id])
	}
	return dst.vacancy()
}

// lastVacancyFor is the one-tick-delayed vacancy a blocking sender sees at
// dst, per slot for join PEs (a sender must only block on ITS input slot,
// or a full sibling slot would wedge the join forever).
func (e *Engine) lastVacancyFor(sender, dst *peState) int {
	if dst.join {
		if dst.lastSlotVac == nil {
			return dst.cap
		}
		return dst.lastSlotVac[dst.slotOf[sender.id]]
	}
	return dst.lastVacancy
}

// traceSpan records one hop span for a sampled item (no-op when tracing
// is off or the item is unsampled). In the discrete-time model service
// begins and ends within the tick, so Dequeue and Done coincide at now.
func (e *Engine) traceSpan(it item, ps *peState, now float64, ev obs.Event) {
	if e.tracer == nil || it.trace == 0 {
		return
	}
	e.tracer.Record(obs.Span{
		Trace: it.trace, PE: int32(ps.id), Node: int32(ps.node), Hops: it.hops,
		Enqueue: it.enq, Dequeue: now, Done: now, Event: ev,
	})
}

// traceDrop ends a sampled item's trace with a terminal loss span.
func (e *Engine) traceDrop(it item, dst *peState, now float64, ev obs.Event) {
	if e.tracer == nil || it.trace == 0 {
		return
	}
	e.tracer.Record(obs.Span{
		Trace: it.trace, PE: int32(dst.id), Node: int32(dst.node), Hops: it.hops,
		Enqueue: it.enq, Done: now, Event: ev,
	})
}

// emit forwards the outputs produced by consuming one SDO.
func (e *Engine) emit(ps *peState, consumed item, now float64) {
	m := ps.svc.Multiplicity()
	if len(ps.down) == 0 {
		// Egress: every produced SDO is productive output.
		for k := 0; k < m; k++ {
			e.col.Egress(now, ps.weight, now-consumed.origin)
			if now >= e.col.Warmup() {
				e.windowWT += ps.weight
				e.delivered[ps.id]++
			}
		}
		e.traceSpan(consumed, ps, now, obs.EventEgress)
		return
	}
	e.traceSpan(consumed, ps, now, obs.EventProcessed)
	out := item{origin: consumed.origin, hops: consumed.hops + 1, trace: consumed.trace, enq: now}
	for k := 0; k < m; k++ {
		for _, d := range ps.down {
			dst := e.pes[d]
			if dst.node != ps.node {
				// Inter-node traffic: charge the sender's NIC budget and
				// route through the transit ring when a delay is modeled.
				if e.netBudget != nil {
					if e.netBudget[ps.node] < 1 {
						e.netDrops++
						e.col.InFlightDrop(now, int(out.hops))
						e.traceDrop(out, dst, now, obs.EventUplinkDrop)
						continue
					}
					e.netBudget[ps.node]--
				}
				if e.netRing != nil {
					slot := (e.tickNo + len(e.netRing) - 1) % len(e.netRing)
					e.netRing[slot] = append(e.netRing[slot], netItem{it: out, dst: sdo.PEID(d), from: ps.id})
					continue
				}
			}
			e.deliverLocal(ps, dst, out, now)
		}
	}
}

// deliverLocal stages an SDO into dst's input (per-slot for joins),
// applying admission semantics.
func (e *Engine) deliverLocal(ps, dst *peState, out item, now float64) {
	shed := e.cfg.Policy == policy.LoadShed
	ev := obs.EventDrop
	if shed {
		ev = obs.EventShed
	}
	if dst.join {
		slot := dst.slotOf[ps.id]
		limit := dst.cap
		if shed {
			limit = dst.cap * 8 / 10
		}
		if dst.joinBufs[slot].len()+len(dst.pendSlots[slot]) < limit {
			dst.pendSlots[slot] = append(dst.pendSlots[slot], out)
		} else {
			e.col.InFlightDrop(now, int(out.hops))
			e.traceDrop(out, dst, now, ev)
		}
		return
	}
	if dst.admits(shed) {
		dst.pending = append(dst.pending, out)
	} else {
		e.col.InFlightDrop(now, int(out.hops))
		e.traceDrop(out, dst, now, ev)
	}
}

// NetDrops returns SDOs lost to link-capacity exhaustion.
func (e *Engine) NetDrops() int64 { return e.netDrops }

// Sim exposes the underlying kernel (tests use it to co-schedule probes).
func (e *Engine) Sim() *sim.Simulator { return e.sim }

// DeliveredByPE returns post-warmup egress SDO counts per PE (zero for
// non-egress PEs).
func (e *Engine) DeliveredByPE() []int64 {
	out := make([]int64, len(e.delivered))
	copy(out, e.delivered)
	return out
}

// BufferLen returns PE j's current input-buffer occupancy (tests); for
// join PEs, the fullest input queue.
func (e *Engine) BufferLen(j sdo.PEID) int { return e.pes[j].ctrlOcc() }

// MovePE migrates PE j to another node mid-run — the §II "dynamic
// placement" operation tier 1 performs when it re-optimizes. The PE's
// buffered SDOs travel with it; its token bucket and controller state are
// preserved (the bucket holds entitlement against the new node from the
// next tick). Call from a callback scheduled on Sim().
func (e *Engine) MovePE(j sdo.PEID, to sdo.NodeID) error {
	if int(j) < 0 || int(j) >= len(e.pes) {
		return fmt.Errorf("streamsim: MovePE unknown PE %d", j)
	}
	if to < 0 || int(to) >= len(e.nodes) {
		return fmt.Errorf("streamsim: MovePE unknown node %d", to)
	}
	ps := e.pes[j]
	if ps.node == to {
		return nil
	}
	old := e.nodes[ps.node]
	for i, p := range old {
		if p == ps {
			e.nodes[ps.node] = append(old[:i], old[i+1:]...)
			break
		}
	}
	ps.node = to
	e.nodes[to] = append(e.nodes[to], ps)
	return nil
}

// StartRetarget schedules a periodic tier-1 re-solve on the simulation
// clock — the simulator analogue of the live runtime's adaptive loop.
// Every `every` simulated seconds, solve is called with the 1-based epoch
// and a copy of the current targets; a non-nil result is installed via
// SetTargets, nil keeps the incumbent. The solve runs in wall time while
// simulated time stands still, so even an expensive re-solve costs the
// simulated system nothing; pair it with a solver deadline to study what
// a bounded epoch budget would have produced. Call before Run; the
// returned stop cancels the schedule.
func (e *Engine) StartRetarget(every float64, solve func(epoch int, cpu []float64) []float64) (stop func(), err error) {
	if every <= 0 {
		return nil, fmt.Errorf("streamsim: StartRetarget period %g, want > 0", every)
	}
	if solve == nil {
		return nil, fmt.Errorf("streamsim: StartRetarget requires a solve callback")
	}
	return e.sim.Every(every, func(float64) {
		cur := make([]float64, len(e.cfg.CPU))
		copy(cur, e.cfg.CPU)
		next := solve(e.retargets+1, cur)
		if next == nil {
			return
		}
		if err := e.SetTargets(next); err == nil {
			e.retargets++
		}
	}), nil
}

// Retargets returns how many target sets StartRetarget has installed.
func (e *Engine) Retargets() int { return e.retargets }

// SetTargets replaces the tier-1 CPU targets mid-run: the paper's tier 1
// re-optimizes "periodically, to support changing workload and resource
// availability" (§I), and the tier-2 token buckets re-rate accordingly.
// Call from a callback scheduled on Sim(). The slice length must match the
// PE count.
func (e *Engine) SetTargets(cpu []float64) error {
	if len(cpu) != len(e.pes) {
		return fmt.Errorf("streamsim: SetTargets got %d entries, topology has %d PEs", len(cpu), len(e.pes))
	}
	copy(e.cfg.CPU, cpu)
	for j, ps := range e.pes {
		ps.bucket.SetRate(cpu[j])
	}
	return nil
}
