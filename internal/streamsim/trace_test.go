package streamsim

import (
	"testing"

	"aces/internal/graph"
	"aces/internal/obs"
	"aces/internal/policy"
)

// TestSimulatorTracesCompleteJourneys runs an underloaded 3-stage chain
// with full sampling and checks every retained trace walks hop-by-hop to
// a terminal egress span at simulated timestamps.
func TestSimulatorTracesCompleteJourneys(t *testing.T) {
	topo := buildChain(t, 3, 2, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	tr := obs.NewTracer(1, 1<<15, 1)
	eng, err := New(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.4, 0.4, 0.4},
		Duration: 10, Seed: 1, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Run()
	if rep.Deliveries == 0 {
		t.Fatal("no deliveries")
	}
	traces := tr.Traces(0)
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	complete, egress := 0, 0
	for _, trc := range traces {
		if !trc.Complete {
			continue
		}
		complete++
		last := trc.Spans[len(trc.Spans)-1]
		if last.Event == obs.EventEgress {
			egress++
			// An underloaded deterministic chain keeps the full journey in
			// the ring: three hops, monotone hop depth and times.
			if len(trc.Spans) != 3 {
				t.Fatalf("egress trace has %d spans, want 3: %+v", len(trc.Spans), trc.Spans)
			}
			for i, s := range trc.Spans {
				if int(s.Hops) != i {
					t.Errorf("span %d at hop depth %d", i, s.Hops)
				}
				if s.Done < s.Enqueue {
					t.Errorf("span %d done %.4f before enqueue %.4f", i, s.Done, s.Enqueue)
				}
				if i > 0 && s.Enqueue < trc.Spans[i-1].Done {
					t.Errorf("span %d enqueued %.4f before previous hop finished %.4f", i, s.Enqueue, trc.Spans[i-1].Done)
				}
			}
		}
	}
	if complete == 0 || egress == 0 {
		t.Fatalf("complete=%d egress=%d traces, want both > 0", complete, egress)
	}
}

// TestSimulatorSamplingRateAndOverloadDrops checks 1-in-N sampling plus
// terminal loss spans: an overloaded UDP chain must end some sampled
// traces in drop events, and the tracer must see ~1/N of arrivals.
func TestSimulatorSamplingRateAndOverloadDrops(t *testing.T) {
	// 2 ms/SDO at target 0.3 → capacity 150/s; offer 400/s.
	topo := buildChain(t, 2, 1, 0.002, 400, graph.BurstSpec{Kind: graph.BurstDeterministic})
	tr := obs.NewTracer(4, 1<<15, 2)
	eng, err := New(Config{
		Topo: topo, Policy: policy.UDP, CPU: []float64{0.3, 0.3},
		Duration: 10, Seed: 2, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Run()
	if rep.InputDrops == 0 && rep.InFlightDrops == 0 {
		t.Fatal("overload produced no drops; test premise broken")
	}
	terminalLoss := 0
	for _, trc := range tr.Traces(0) {
		for _, s := range trc.Spans {
			if s.Event == obs.EventDrop || s.Event == obs.EventShed {
				terminalLoss++
			}
		}
	}
	if terminalLoss == 0 {
		t.Errorf("overloaded run recorded no terminal loss spans")
	}
}

// TestSimulatorTelemetryFlushes checks the registry sees per-PE gauges on
// the stability cadence with simulated timestamps.
func TestSimulatorTelemetryFlushes(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	sink := obs.NewMemorySink(0)
	reg := obs.NewRegistry(sink)
	eng, err := New(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.4, 0.4},
		Duration: 5, SampleEvery: 0.1, Seed: 3, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	frames := sink.Frames()
	// 5 s at a 0.1 s cadence → ≈50 frames.
	if len(frames) < 40 {
		t.Fatalf("got %d telemetry frames, want ≈50", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Now <= frames[i-1].Now {
			t.Fatalf("frame timestamps not increasing: %.3f after %.3f", frames[i].Now, frames[i-1].Now)
		}
	}
	ts, vs := sink.Series("rmax{node=0,pe=1}")
	if len(ts) < 40 || len(vs) != len(ts) {
		t.Fatalf("rmax series has %d/%d points, want ≈50", len(ts), len(vs))
	}
}
