package streamsim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"aces/internal/graph"
	"aces/internal/metrics"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// detService returns a burst-free service model with fixed per-SDO cost.
func detService(cost float64) workload.ServiceParams {
	return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
}

// buildChain makes src → pe0 → … → peN−1 across `nodes` nodes (round
// robin), deterministic cost per stage, weight 1 on the last PE.
func buildChain(t *testing.T, stages int, nodes int, cost, srcRate float64, burst graph.BurstSpec) *graph.Topology {
	t.Helper()
	topo := graph.New(nodes, 50)
	prev := sdo.NilPE
	for i := 0; i < stages; i++ {
		w := 0.0
		if i == stages-1 {
			w = 1
		}
		id := topo.AddPE(graph.PE{
			Service: detService(cost),
			Weight:  w,
			Node:    sdo.NodeID(i % nodes),
		})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: srcRate, Burst: burst}); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func run(t *testing.T, topo *graph.Topology, pol policy.Policy, cpu []float64, dur float64, seed int64) metrics.Report {
	t.Helper()
	eng, err := New(Config{Topo: topo, Policy: pol, CPU: cpu, Duration: dur, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

func TestConfigValidation(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	if _, err := New(Config{Policy: policy.ACES, CPU: []float64{0.5, 0.5}}); err == nil {
		t.Errorf("missing topo accepted")
	}
	if _, err := New(Config{Topo: topo, CPU: []float64{0.5, 0.5}}); err == nil {
		t.Errorf("missing policy accepted")
	}
	if _, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.5}}); err == nil {
		t.Errorf("wrong CPU length accepted")
	}
}

// Underloaded chain: every policy must deliver the full source rate with
// no loss anywhere.
func TestUnderloadAllPoliciesLossless(t *testing.T) {
	// Two stages at 2 ms/SDO on one node, targets 0.4 each → capacity
	// 200/s per stage; source 50/s CBR.
	topo := buildChain(t, 2, 1, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	cpu := []float64{0.4, 0.4}
	for _, pol := range policy.All() {
		r := run(t, topo, pol, cpu, 20, 1)
		if math.Abs(r.WeightedThroughput-50) > 2.5 {
			t.Errorf("%v: wt = %.2f, want ≈50", pol, r.WeightedThroughput)
		}
		if r.InputDrops != 0 || r.InFlightDrops != 0 {
			t.Errorf("%v: drops in underload: %+v", pol, r)
		}
		if r.MeanLatency <= 0 || r.MeanLatency > 0.1 {
			t.Errorf("%v: implausible latency %.4f s", pol, r.MeanLatency)
		}
	}
}

// Overloaded chain: throughput is capped by the bottleneck stage for every
// policy; losses happen at the system input, and Lock-Step must never drop
// in flight (it blocks instead).
func TestOverloadChainBottleneck(t *testing.T) {
	topo := buildChain(t, 3, 3, 0.002, 400, graph.BurstSpec{Kind: graph.BurstPoisson})
	// Each stage on its own node with target 0.5 → 250/s capacity;
	// source 400/s.
	cpu := []float64{0.5, 0.5, 0.5}
	for _, pol := range policy.All() {
		r := run(t, topo, pol, cpu, 20, 2)
		if r.WeightedThroughput > 260 {
			t.Errorf("%v: wt %.1f exceeds bottleneck capacity 250", pol, r.WeightedThroughput)
		}
		if r.WeightedThroughput < 200 {
			t.Errorf("%v: wt %.1f far below bottleneck capacity", pol, r.WeightedThroughput)
		}
		if r.InputDrops == 0 {
			t.Errorf("%v: overload must drop at the input", pol)
		}
		if pol == policy.LockStep && r.InFlightDrops != 0 {
			t.Errorf("lockstep dropped %d in flight; blocking must prevent that", r.InFlightDrops)
		}
	}
}

// The Fig. 2 scenario: one producer fanning out to a slow (10/s) and a
// fast (30/s) consumer. Max-flow (ACES, UDP) keeps the fast branch at full
// rate; min-flow (Lock-Step) drags everything to the slow branch's rate.
func TestFig2MaxFlowVersusMinFlow(t *testing.T) {
	topo := graph.New(2, 50)
	producer := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0})
	slow := topo.AddPE(graph.PE{Service: detService(0.050), Node: 1, Weight: 1})
	fast := topo.AddPE(graph.PE{Service: detService(0.050 / 3), Node: 1, Weight: 1})
	if err := topo.Connect(producer, slow); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(producer, fast); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: producer, Rate: 30, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	// Producer can do 30/s at c = 0.06; give 0.2 for headroom. Branches:
	// slow 0.5/0.050 = 10/s, fast 0.5/(0.050/3) = 30/s.
	cpu := []float64{0.2, 0.5, 0.5}

	aces := run(t, topo, policy.ACES, cpu, 30, 3)
	udp := run(t, topo, policy.UDP, cpu, 30, 3)
	lock := run(t, topo, policy.LockStep, cpu, 30, 3)

	// Max-flow: fast branch ≈30 + slow ≈10 ⇒ wt ≈ 40.
	if aces.WeightedThroughput < 34 {
		t.Errorf("ACES wt = %.1f, want ≈40 (max-flow preserves the fast branch)", aces.WeightedThroughput)
	}
	if udp.WeightedThroughput < 34 {
		t.Errorf("UDP wt = %.1f, want ≈40", udp.WeightedThroughput)
	}
	// Min-flow: both branches ≈10 ⇒ wt ≈ 20.
	if lock.WeightedThroughput > 26 {
		t.Errorf("LockStep wt = %.1f, want ≈20 (min-flow slows the fast branch)", lock.WeightedThroughput)
	}
	if aces.WeightedThroughput < lock.WeightedThroughput*1.4 {
		t.Errorf("ACES %.1f should beat LockStep %.1f by ≥40%% here", aces.WeightedThroughput, lock.WeightedThroughput)
	}
}

// ACES holds buffers near b₀ = B/2; Lock-Step runs them essentially full.
// This is the §IV stability goal and the mechanism behind Fig. 4's latency
// gap.
func TestACESBufferRegulationVsLockStep(t *testing.T) {
	// Ingress feeds a slower second stage: the second stage's buffer is
	// where policy differences show.
	topo := graph.New(2, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0})
	b := topo.AddPE(graph.PE{Service: detService(0.005), Node: 1, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 300, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	// a: 0.8/0.002=400/s ≫ b: 0.8/0.005=160/s; source 300/s overloads b.
	cpu := []float64{0.8, 0.8}

	measure := func(pol policy.Policy) (meanOcc float64) {
		eng, err := New(Config{Topo: topo, Policy: pol, CPU: cpu, Duration: 30, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		eng.Sim().Every(0.05, func(now float64) {
			if now > 10 {
				sum += float64(eng.BufferLen(1))
				n++
			}
		})
		eng.Run()
		return sum / float64(n)
	}

	acesOcc := measure(policy.ACES)
	lockOcc := measure(policy.LockStep)
	if acesOcc < 10 || acesOcc > 40 {
		t.Errorf("ACES downstream buffer mean = %.1f, want near b₀ = 25", acesOcc)
	}
	if lockOcc < 40 {
		t.Errorf("LockStep downstream buffer mean = %.1f, want near full (50)", lockOcc)
	}
	// The regulated buffer is what cuts latency.
	aces := run(t, topo, policy.ACES, cpu, 30, 4)
	lock := run(t, topo, policy.LockStep, cpu, 30, 4)
	if aces.MeanLatency >= lock.MeanLatency {
		t.Errorf("ACES latency %.3f should beat LockStep %.3f", aces.MeanLatency, lock.MeanLatency)
	}
}

// Identical seeds must give identical reports (full determinism).
func TestDeterminism(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(30, 5, 11))
	if err != nil {
		t.Fatal(err)
	}
	cpu := equalSplit(topo)
	r1 := run(t, topo, policy.ACES, cpu, 10, 42)
	r2 := run(t, topo, policy.ACES, cpu, 10, 42)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", r1, r2)
	}
	r3 := run(t, topo, policy.ACES, cpu, 10, 43)
	if reflect.DeepEqual(r1, r3) {
		t.Errorf("different seeds produced identical reports (suspicious)")
	}
}

// equalSplit gives every PE an equal share of its node.
func equalSplit(topo *graph.Topology) []float64 {
	cpu := make([]float64, topo.NumPEs())
	for n := 0; n < topo.NumNodes; n++ {
		ids := topo.OnNode(sdo.NodeID(n))
		for _, id := range ids {
			cpu[id] = 1 / float64(len(ids))
		}
	}
	return cpu
}

// Smoke test on a paper-style generated topology: all five policies run,
// deliver data, and produce sane reports.
func TestGeneratedTopologyAllPolicies(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, 21))
	if err != nil {
		t.Fatal(err)
	}
	cpu := equalSplit(topo)
	for _, pol := range []policy.Policy{policy.ACES, policy.UDP, policy.LockStep, policy.ACESMinFlow, policy.ACESStrictCPU} {
		r := run(t, topo, pol, cpu, 12, 5)
		if r.Deliveries == 0 {
			t.Errorf("%v: no deliveries", pol)
		}
		if r.WeightedThroughput <= 0 {
			t.Errorf("%v: zero weighted throughput", pol)
		}
		if r.MeanLatency <= 0 {
			t.Errorf("%v: zero latency", pol)
		}
		if r.MeanBufferOccupancy < 0 || r.MeanBufferOccupancy > 50 {
			t.Errorf("%v: implausible buffer occupancy %.1f", pol, r.MeanBufferOccupancy)
		}
	}
}

// Buffers must never exceed capacity: probe a bursty overloaded run.
func TestBufferNeverExceedsCapacity(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(30, 5, 31))
	if err != nil {
		t.Fatal(err)
	}
	cpu := equalSplit(topo)
	for _, pol := range policy.All() {
		eng, err := New(Config{Topo: topo, Policy: pol, CPU: cpu, Duration: 8, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		bad := false
		eng.Sim().Every(0.02, func(now float64) {
			for j := 0; j < topo.NumPEs(); j++ {
				if eng.BufferLen(sdo.PEID(j)) > topo.BufferSize(sdo.PEID(j)) {
					bad = true
				}
			}
		})
		eng.Run()
		if bad {
			t.Errorf("%v: buffer exceeded capacity", pol)
		}
	}
}

// The min-flow ablation must not beat full ACES on the Fig. 2 fan-out
// shape, and strict-CPU must not beat token-bucket CPU under burstiness.
func TestAblationsOrdering(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(40, 6, 41))
	if err != nil {
		t.Fatal(err)
	}
	cpu := equalSplit(topo)
	aces := run(t, topo, policy.ACES, cpu, 15, 7)
	minf := run(t, topo, policy.ACESMinFlow, cpu, 15, 7)
	if minf.WeightedThroughput > aces.WeightedThroughput*1.10 {
		t.Errorf("min-flow ablation (%.2f) markedly beats max-flow (%.2f)",
			minf.WeightedThroughput, aces.WeightedThroughput)
	}
}

// End-to-end latency must be at least one tick per hop (store-and-forward
// granularity).
func TestLatencyFloor(t *testing.T) {
	topo := buildChain(t, 3, 1, 0.001, 20, graph.BurstSpec{Kind: graph.BurstDeterministic})
	cpu := []float64{0.2, 0.2, 0.2}
	r := run(t, topo, policy.ACES, cpu, 10, 8)
	if r.MeanLatency < 2*0.010 {
		t.Errorf("latency %.4f below the 2-hop store-and-forward floor", r.MeanLatency)
	}
}

func TestFifo(t *testing.T) {
	var q fifo
	for i := 0; i < 1000; i++ {
		q.push(item{origin: float64(i)})
	}
	for i := 0; i < 1000; i++ {
		if q.len() != 1000-i {
			t.Fatalf("len = %d", q.len())
		}
		if got := q.pop(); got.origin != float64(i) {
			t.Fatalf("pop %d = %g", i, got.origin)
		}
	}
	if q.len() != 0 {
		t.Errorf("final len = %d", q.len())
	}
	// Interleaved push/pop exercises compaction.
	for round := 0; round < 2000; round++ {
		q.push(item{origin: float64(round)})
		if round%2 == 1 {
			q.pop()
			q.pop()
		}
	}
}

// Conservation law: on a pure chain (multiplicity 1, no fan-out), every
// admitted SDO is either delivered, dropped in flight, or still buffered
// when the run ends. Any imbalance means the engine created or destroyed
// data.
func TestConservationOnChain(t *testing.T) {
	for _, pol := range policy.All() {
		topo := buildChain(t, 4, 2, 0.002, 300, graph.BurstSpec{Kind: graph.BurstPoisson})
		cpu := []float64{0.4, 0.4, 0.4, 0.4}
		eng, err := New(Config{Topo: topo, Policy: pol, CPU: cpu, Duration: 12, Seed: 17, Warmup: 0.001})
		if err != nil {
			t.Fatal(err)
		}
		var admitted int64
		// Count arrivals that made it into the ingress buffer by sampling
		// the source-side accounting: admitted = deliveries + inflight
		// drops + residual buffered. We verify by running and checking the
		// balance with residuals.
		r := eng.Run()
		var residual int64
		for j := 0; j < topo.NumPEs(); j++ {
			residual += int64(eng.BufferLen(sdo.PEID(j)))
		}
		admitted = r.Deliveries + r.InFlightDrops + residual
		// Total generated = admitted + input drops; regenerate the source
		// stream to count exactly.
		proc, err := topo.Sources[0].Burst.Build(topo.Sources[0].Rate, simSubstream(17, 5000))
		if err != nil {
			t.Fatal(err)
		}
		var generated int64
		for tt := proc.NextInterval(); tt < 12; tt += proc.NextInterval() {
			generated++
		}
		if got := admitted + r.InputDrops; got != generated {
			t.Errorf("%v: conservation violated: delivered %d + inflight %d + residual %d + inputDrops %d = %d, generated %d",
				pol, r.Deliveries, r.InFlightDrops, residual, r.InputDrops, got, generated)
		}
	}
}

// Warmup must not affect conservation accounting in the test above, so it
// uses a near-zero warmup. This companion test pins the default warmup
// behaviour: deliveries before warmup are excluded.
func TestWarmupExcludesEarlyDeliveries(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	cpu := []float64{0.4, 0.4}
	full, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: cpu, Duration: 10, Seed: 1, Warmup: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: cpu, Duration: 10, Seed: 1, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	rf, rw := full.Run(), warm.Run()
	if rw.Deliveries >= rf.Deliveries {
		t.Errorf("warmup run should count fewer deliveries: %d vs %d", rw.Deliveries, rf.Deliveries)
	}
}

// simSubstream re-derives the engine's source random stream so tests can
// replay the exact arrival sequence.
func simSubstream(seed int64, id uint64) *sim.Rand { return sim.Substream(seed, id) }

// Tier-1 retargeting mid-run (§I: the global optimization re-runs
// periodically): starting from badly skewed targets, pushing the correct
// targets halfway through must recover throughput.
func TestSetTargetsMidRunRecovers(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 150, graph.BurstSpec{Kind: graph.BurstDeterministic})
	// Skewed: stage 1 starved (capacity 50/s), stage 0 over-provisioned.
	skewed := []float64{0.8, 0.1}
	good := []float64{0.45, 0.45} // 225/s per stage — carries the full 150/s

	baseline := run(t, topo, policy.ACES, good, 30, 5)

	eng, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: append([]float64(nil), skewed...), Duration: 30, Seed: 5, Warmup: 20})
	if err != nil {
		t.Fatal(err)
	}
	eng.Sim().At(15, func() {
		if err := eng.SetTargets(good); err != nil {
			t.Errorf("SetTargets: %v", err)
		}
	})
	recovered := eng.Run()

	// Post-warmup (t ≥ 20) the retargeted run must be close to the
	// always-good baseline.
	if recovered.WeightedThroughput < baseline.WeightedThroughput*0.85 {
		t.Errorf("retargeted wt %.1f ≪ baseline %.1f", recovered.WeightedThroughput, baseline.WeightedThroughput)
	}

	// And without the fix the skewed targets stay bad.
	stuck, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: skewed, Duration: 30, Seed: 5, Warmup: 20})
	if err != nil {
		t.Fatal(err)
	}
	stuckRep := stuck.Run()
	if stuckRep.WeightedThroughput > baseline.WeightedThroughput*0.6 {
		t.Errorf("skewed targets unexpectedly healthy: %.1f vs %.1f", stuckRep.WeightedThroughput, baseline.WeightedThroughput)
	}

	// Validation path.
	if err := eng.SetTargets([]float64{1}); err == nil {
		t.Errorf("wrong-length targets accepted")
	}
}

// LoadShed keeps headroom: under overload its buffers stay below the 80%
// threshold and its latency beats UDP's drop-tail at the brim, at some
// throughput cost.
func TestLoadShedKeepsHeadroom(t *testing.T) {
	topo := buildChain(t, 2, 2, 0.005, 400, graph.BurstSpec{Kind: graph.BurstPoisson})
	cpu := []float64{0.8, 0.8}
	eng, err := New(Config{Topo: topo, Policy: policy.LoadShed, CPU: cpu, Duration: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	maxOcc := 0
	eng.Sim().Every(0.02, func(now float64) {
		for j := 0; j < topo.NumPEs(); j++ {
			if l := eng.BufferLen(sdo.PEID(j)); l > maxOcc {
				maxOcc = l
			}
		}
	})
	shedRep := eng.Run()
	if maxOcc > 40 {
		t.Errorf("loadshed max occupancy %d exceeds the 80%% threshold of B=50", maxOcc)
	}
	udpRep := run(t, topo, policy.UDP, cpu, 20, 9)
	if shedRep.MeanLatency >= udpRep.MeanLatency {
		t.Errorf("loadshed latency %.3f should beat UDP %.3f (smaller standing queues)",
			shedRep.MeanLatency, udpRep.MeanLatency)
	}
	if shedRep.Deliveries == 0 {
		t.Errorf("loadshed delivered nothing")
	}
}

// The paper's Eq. 6 overhead term b: a PE with overhead b delivers
// h(c) = c/T − b SDOs/sec when backlogged; with b = 0 it delivers c/T.
func TestOverheadReducesThroughputPerEq6(t *testing.T) {
	build := func(overhead float64) *graph.Topology {
		topo := graph.New(1, 50)
		topo.AddPE(graph.PE{Service: detService(0.002), Weight: 1, Overhead: overhead})
		if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: 500, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
			t.Fatal(err)
		}
		return topo
	}
	// c = 0.5, T = 2ms → a·c = 250/s. With b = 60/s → h = 190/s.
	clean := run(t, build(0), policy.UDP, []float64{0.5}, 20, 3)
	taxed := run(t, build(60), policy.UDP, []float64{0.5}, 20, 3)
	if math.Abs(clean.WeightedThroughput-250) > 12 {
		t.Errorf("b=0 throughput = %.1f, want ≈250", clean.WeightedThroughput)
	}
	if math.Abs(taxed.WeightedThroughput-190) > 15 {
		t.Errorf("b=60 throughput = %.1f, want ≈190 (h = a·c − b)", taxed.WeightedThroughput)
	}
}

// Property: for a single deterministic PE under every policy, measured
// throughput matches fluid theory min(source rate, c/T) within a few
// percent, across random parameterizations.
func TestSinglePEMatchesTheoryProperty(t *testing.T) {
	f := func(tRaw, cRaw, rRaw uint8) bool {
		cost := 0.001 + float64(tRaw%40)/4000.0 // 1–11 ms
		share := 0.1 + float64(cRaw%80)/100.0   // 0.1–0.9
		rate := 20 + float64(rRaw)*2            // 20–530 /s
		capacity := share / cost
		want := math.Min(rate, capacity)

		topo := graph.New(1, 50)
		topo.AddPE(graph.PE{Service: detService(cost), Weight: 1})
		if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: rate, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
			return false
		}
		for _, pol := range []policy.Policy{policy.ACES, policy.UDP, policy.LockStep} {
			eng, err := New(Config{Topo: topo, Policy: pol, CPU: []float64{share}, Duration: 12, Seed: 5})
			if err != nil {
				return false
			}
			got := eng.Run().WeightedThroughput
			if math.Abs(got-want)/want > 0.08 {
				t.Logf("%v cost=%.4f share=%.2f rate=%.0f: got %.1f want %.1f", pol, cost, share, rate, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Join semantics (Eq. 5's per-upstream form): a join PE fires at the rate
// of its slowest input, and its output latency reflects the
// slowest-arriving component.
func TestJoinFiresAtSlowestInputRate(t *testing.T) {
	topo := graph.New(3, 50)
	fastSrc := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0})
	slowSrc := topo.AddPE(graph.PE{Service: detService(0.002), Node: 1})
	joiner := topo.AddPE(graph.PE{Service: detService(0.002), Node: 2, Weight: 1, Join: true})
	if err := topo.Connect(fastSrc, joiner); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(slowSrc, joiner); err != nil {
		t.Fatal(err)
	}
	// Fast input at 100/s, slow at 40/s.
	if err := topo.AddSource(graph.Source{Stream: 1, Target: fastSrc, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 2, Target: slowSrc, Rate: 40, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	cpu := []float64{0.4, 0.4, 0.4}
	for _, pol := range policy.All() {
		r := run(t, topo, pol, cpu, 20, 6)
		if math.Abs(r.WeightedThroughput-40) > 4 {
			t.Errorf("%v: join output = %.1f/s, want ≈40 (slowest input)", pol, r.WeightedThroughput)
		}
	}
}

// The tier-1 fluid model must agree with the join simulator: allocations
// for a join topology carry the slowest input's rate.
func TestJoinFluidModelAgreesWithOptimizer(t *testing.T) {
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002)})
	b := topo.AddPE(graph.PE{Service: detService(0.010)})
	j := topo.AddPE(graph.PE{Service: detService(0.002), Weight: 1, Join: true})
	if err := topo.Connect(a, j); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, j); err != nil {
		t.Fatal(err)
	}
	for i, target := range []sdo.PEID{a, b} {
		if err := topo.AddSource(graph.Source{Stream: sdo.StreamID(i + 1), Target: target, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
			t.Fatal(err)
		}
	}
	rin, rout, err := optimize.Propagate(topo, []float64{0.2, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// a: 100/s, b: 50/s → join fires at min(50, own capacity 100) = 50.
	if math.Abs(rin[j]-50) > 1e-9 || math.Abs(rout[j]-50) > 1e-9 {
		t.Errorf("fluid join rate = %.1f/%.1f, want 50", rin[j], rout[j])
	}
}

func TestJoinValidation(t *testing.T) {
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002)})
	j := topo.AddPE(graph.PE{Service: detService(0.002), Weight: 1, Join: true})
	if err := topo.Connect(a, j); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 10, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err == nil {
		t.Errorf("single-input join accepted")
	}
}

// Runtime migration (§II dynamic placement): moving a PE off an
// overloaded node mid-run must lift throughput, and the system must stay
// stable through the transient.
func TestMovePERelievesOverloadedNode(t *testing.T) {
	// Two stages crammed onto node 0 (total demand 2× the node) with node
	// 1 idle; migrating stage 2 to node 1 doubles capacity.
	topo := graph.New(2, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0})
	b := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 400, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	cpu := []float64{0.5, 0.5} // on one node: 250/s each, pipeline 250/s max admission split

	// Without migration: both on node 0, pipeline carries ~250/s.
	before := run(t, topo, policy.ACES, cpu, 20, 3)

	eng, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.9, 0.9}, Duration: 20, Seed: 3, Warmup: 12})
	if err != nil {
		t.Fatal(err)
	}
	eng.Sim().At(6, func() {
		if err := eng.MovePE(1, 1); err != nil {
			t.Errorf("MovePE: %v", err)
		}
		if err := eng.SetTargets([]float64{0.9, 0.9}); err != nil {
			t.Errorf("SetTargets: %v", err)
		}
	})
	after := eng.Run()

	// Post-migration each stage can use 0.9 of its own node: 450/s ≥ the
	// 400/s source, far above the single-node ceiling.
	if after.WeightedThroughput < before.WeightedThroughput*1.3 {
		t.Errorf("migration lifted throughput only %.1f → %.1f", before.WeightedThroughput, after.WeightedThroughput)
	}
	if after.WeightedThroughput < 350 {
		t.Errorf("post-migration throughput %.1f, want ≈400", after.WeightedThroughput)
	}

	// Validation.
	if err := eng.MovePE(99, 0); err == nil {
		t.Errorf("unknown PE accepted")
	}
	if err := eng.MovePE(0, 9); err == nil {
		t.Errorf("unknown node accepted")
	}
	if err := eng.MovePE(0, 0); err != nil {
		t.Errorf("no-op move errored: %v", err)
	}
}

// Network modeling: a constrained link caps inter-node throughput, and
// transit delay adds to end-to-end latency; intra-node traffic is free.
func TestLinkCapacityCapsInterNodeThroughput(t *testing.T) {
	topo := buildChain(t, 2, 2, 0.002, 200, graph.BurstSpec{Kind: graph.BurstDeterministic})
	cpu := []float64{0.8, 0.8} // CPU capacity 400/s per stage — not binding
	eng, err := New(Config{Topo: topo, Policy: policy.UDP, CPU: cpu, Duration: 20, Seed: 4, LinkCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Run()
	if math.Abs(r.WeightedThroughput-100) > 8 {
		t.Errorf("wt = %.1f, want ≈100 (link-limited)", r.WeightedThroughput)
	}
	if eng.NetDrops() == 0 {
		t.Errorf("expected network drops at an oversubscribed link")
	}

	// The same deployment on ONE node is not link-limited.
	topo1 := buildChain(t, 2, 1, 0.002, 200, graph.BurstSpec{Kind: graph.BurstDeterministic})
	eng1, err := New(Config{Topo: topo1, Policy: policy.UDP, CPU: []float64{0.45, 0.45}, Duration: 20, Seed: 4, LinkCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	r1 := eng1.Run()
	if r1.WeightedThroughput < 180 {
		t.Errorf("intra-node wt = %.1f should ignore LinkCapacity", r1.WeightedThroughput)
	}
	if eng1.NetDrops() != 0 {
		t.Errorf("intra-node traffic charged the NIC")
	}
}

func TestNetDelayAddsLatency(t *testing.T) {
	topo := buildChain(t, 2, 2, 0.002, 50, graph.BurstSpec{Kind: graph.BurstDeterministic})
	cpu := []float64{0.4, 0.4}
	base := run(t, topo, policy.ACES, cpu, 15, 5)
	eng, err := New(Config{Topo: topo, Policy: policy.ACES, CPU: cpu, Duration: 15, Seed: 5, NetDelay: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	delayed := eng.Run()
	extra := delayed.MeanLatency - base.MeanLatency
	if extra < 0.08 || extra > 0.14 {
		t.Errorf("transit delay added %.3fs latency, want ≈0.1s", extra)
	}
	// Delay must not lose data in underload.
	if delayed.InFlightDrops != 0 || delayed.InputDrops != 0 {
		t.Errorf("delay caused losses: %+v", delayed)
	}
	if math.Abs(delayed.WeightedThroughput-base.WeightedThroughput) > 3 {
		t.Errorf("delay changed throughput: %.1f vs %.1f", delayed.WeightedThroughput, base.WeightedThroughput)
	}
}
