package controller

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTokenBucketEarnSpendCap(t *testing.T) {
	b := NewTokenBucket(0.2, 5)
	if !almostEq(b.Level(), 0.2, 1e-12) {
		t.Errorf("initial level = %g, want one tick", b.Level())
	}
	for i := 0; i < 100; i++ {
		b.Refill()
	}
	if !almostEq(b.Level(), 1.0, 1e-12) {
		t.Errorf("capped level = %g, want 5 ticks × 0.2 = 1.0", b.Level())
	}
	b.Spend(0.7)
	if !almostEq(b.Level(), 0.3, 1e-12) {
		t.Errorf("level after spend = %g", b.Level())
	}
	b.Spend(10)
	if b.Level() != 0 {
		t.Errorf("overspend should clamp to zero, got %g", b.Level())
	}
	if b.Rate() != 0.2 {
		t.Errorf("Rate = %g", b.Rate())
	}
}

func TestTokenBucketSetRatePreservesHorizon(t *testing.T) {
	b := NewTokenBucket(0.2, 5)
	b.SetRate(0.4)
	for i := 0; i < 100; i++ {
		b.Refill()
	}
	if !almostEq(b.Level(), 2.0, 1e-12) {
		t.Errorf("after rate change cap = %g, want 0.4 × 5 = 2.0", b.Level())
	}
	// Shrinking the rate clamps the stored level.
	b.SetRate(0.01)
	if b.Level() > 0.05+1e-12 {
		t.Errorf("level %g exceeds new cap", b.Level())
	}
}

func TestTokenBucketValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for negative rate")
		}
	}()
	NewTokenBucket(-1, 1)
}

func TestPlanACESUndersubscribed(t *testing.T) {
	pes := []PETick{
		{Target: 0.3, Tokens: 0.3, Occupancy: 10, Work: 0.2, Cap: math.Inf(1)},
		{Target: 0.3, Tokens: 0.3, Occupancy: 5, Work: 0.1, Cap: math.Inf(1)},
	}
	alloc := PlanACES(pes, 1)
	if !almostEq(alloc[0], 0.2, 1e-12) || !almostEq(alloc[1], 0.1, 1e-12) {
		t.Errorf("undersubscribed plan = %v, want wants", alloc)
	}
}

func TestPlanACESRespectsCaps(t *testing.T) {
	pes := []PETick{
		{Tokens: 0.9, Occupancy: 50, Work: 0.8, Cap: 0.1},              // downstream bound gates
		{Tokens: 0.05, Occupancy: 50, Work: 0.8, Cap: 1},               // tokens gate
		{Tokens: 0.9, Occupancy: 50, Work: 0.02, Cap: 1},               // work gates
		{Tokens: 0.9, Occupancy: 50, Work: 0.8, Cap: 1, Blocked: true}, // blocked
	}
	alloc := PlanACES(pes, 1)
	if !almostEq(alloc[0], 0.1, 1e-12) {
		t.Errorf("cap-gated alloc = %g", alloc[0])
	}
	if !almostEq(alloc[1], 0.05, 1e-12) {
		t.Errorf("token-gated alloc = %g", alloc[1])
	}
	if !almostEq(alloc[2], 0.02, 1e-12) {
		t.Errorf("work-gated alloc = %g", alloc[2])
	}
	if alloc[3] != 0 {
		t.Errorf("blocked PE allocated %g", alloc[3])
	}
}

func TestPlanACESOversubscribedSharesByOccupancy(t *testing.T) {
	// Two PEs each wanting 0.8 on a full node: shares follow occupancy 3:1.
	pes := []PETick{
		{Tokens: 0.8, Occupancy: 30, Work: 0.8, Cap: math.Inf(1)},
		{Tokens: 0.8, Occupancy: 10, Work: 0.8, Cap: math.Inf(1)},
	}
	alloc := PlanACES(pes, 1)
	if !almostEq(alloc[0]+alloc[1], 1, 1e-9) {
		t.Fatalf("total = %g, want 1", alloc[0]+alloc[1])
	}
	if !almostEq(alloc[0], 0.75, 1e-9) || !almostEq(alloc[1], 0.25, 1e-9) {
		t.Errorf("shares = %v, want 3:1 split", alloc)
	}
}

func TestPlanACESProgressiveFilling(t *testing.T) {
	// PE 0 saturates its small want; the residual flows to the others by
	// occupancy, not evaporating.
	pes := []PETick{
		{Tokens: 0.1, Occupancy: 100, Work: 0.1, Cap: math.Inf(1)},
		{Tokens: 0.9, Occupancy: 10, Work: 0.9, Cap: math.Inf(1)},
		{Tokens: 0.9, Occupancy: 10, Work: 0.9, Cap: math.Inf(1)},
	}
	alloc := PlanACES(pes, 1)
	total := alloc[0] + alloc[1] + alloc[2]
	if !almostEq(total, 1, 1e-9) {
		t.Errorf("total = %g, want 1 (work-conserving under load)", total)
	}
	if !almostEq(alloc[0], 0.1, 1e-9) {
		t.Errorf("saturated PE got %g, want 0.1", alloc[0])
	}
	if !almostEq(alloc[1], 0.45, 1e-9) || !almostEq(alloc[2], 0.45, 1e-9) {
		t.Errorf("residual split = %v", alloc)
	}
}

func TestPlanACESZeroOccupancyStillBounded(t *testing.T) {
	// All occupancies zero (idle node): wants are zero work, plan must be
	// all-zero and must not divide by zero.
	pes := []PETick{
		{Tokens: 0.5, Occupancy: 0, Work: 0, Cap: math.Inf(1)},
		{Tokens: 0.5, Occupancy: 0, Work: 0, Cap: math.Inf(1)},
	}
	alloc := PlanACES(pes, 1)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("idle node allocated %v", alloc)
	}
}

func TestPlanFairShareBaseTargets(t *testing.T) {
	pes := []PETick{
		{Target: 0.6, Work: 1},
		{Target: 0.4, Work: 1},
	}
	alloc := PlanFairShare(pes, 1)
	if !almostEq(alloc[0], 0.6, 1e-9) || !almostEq(alloc[1], 0.4, 1e-9) {
		t.Errorf("fair share = %v, want targets", alloc)
	}
}

func TestPlanFairShareRedistributesBlockedCPU(t *testing.T) {
	// The blocked PE's 0.5 target flows to the two runnable PEs
	// proportionally to their targets (Lock-Step semantics §VI).
	pes := []PETick{
		{Target: 0.5, Work: 1, Blocked: true},
		{Target: 0.3, Work: 1},
		{Target: 0.2, Work: 1},
	}
	alloc := PlanFairShare(pes, 1)
	if alloc[0] != 0 {
		t.Errorf("blocked PE allocated %g", alloc[0])
	}
	if !almostEq(alloc[1], 0.6, 1e-9) || !almostEq(alloc[2], 0.4, 1e-9) {
		t.Errorf("redistribution = %v, want 0.6/0.4", alloc)
	}
}

func TestPlanFairShareCapsAtWork(t *testing.T) {
	// PE 0 only has a little work; the excess goes to PE 1.
	pes := []PETick{
		{Target: 0.5, Work: 0.1},
		{Target: 0.5, Work: 2},
	}
	alloc := PlanFairShare(pes, 1)
	if !almostEq(alloc[0], 0.1, 1e-9) {
		t.Errorf("work-capped alloc = %g", alloc[0])
	}
	if !almostEq(alloc[1], 0.9, 1e-9) {
		t.Errorf("redistributed alloc = %g", alloc[1])
	}
}

func TestPlanFairShareIdleNode(t *testing.T) {
	pes := []PETick{{Target: 0.5, Work: 0}, {Target: 0.5, Work: 0}}
	alloc := PlanFairShare(pes, 1)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("idle node allocated %v", alloc)
	}
}

func TestPlanStrictNoRedistribution(t *testing.T) {
	pes := []PETick{
		{Target: 0.5, Work: 0.1},
		{Target: 0.5, Work: 2},
	}
	alloc := PlanStrict(pes, 1)
	if !almostEq(alloc[0], 0.1, 1e-9) || !almostEq(alloc[1], 0.5, 1e-9) {
		t.Errorf("strict = %v, want [0.1, 0.5] (no redistribution)", alloc)
	}
}

// Property: all planners return non-negative allocations summing to at
// most capacity, never exceeding per-PE work, and ACES never exceeds
// tokens or cap.
func TestPlannerInvariantsProperty(t *testing.T) {
	f := func(raw []struct {
		Target, Tokens, Occ, Work, Cap uint8
		Blocked                        bool
	}) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		pes := make([]PETick, len(raw))
		for i, r := range raw {
			pes[i] = PETick{
				Target:    float64(r.Target) / 255,
				Tokens:    float64(r.Tokens) / 128,
				Occupancy: float64(r.Occ),
				Work:      float64(r.Work) / 64,
				Cap:       float64(r.Cap) / 64,
				Blocked:   r.Blocked,
			}
		}
		for _, plan := range [][]float64{PlanACES(pes, 1), PlanFairShare(pes, 1), PlanStrict(pes, 1)} {
			var sum float64
			for i, a := range plan {
				if a < -1e-12 || a > pes[i].Work+1e-9 {
					return false
				}
				if pes[i].Blocked && a != 0 {
					return false
				}
				sum += a
			}
			if sum > 1+1e-9 {
				return false
			}
		}
		// ACES-specific: tokens and caps respected.
		for i, a := range PlanACES(pes, 1) {
			if a > pes[i].Tokens+1e-9 || a > pes[i].Cap+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestRateCPUConversionsRoundTrip(t *testing.T) {
	const (
		cost = 0.002
		mult = 2.0
		dt   = 0.01
	)
	c := RateToCPU(5, cost, mult, dt)
	// 5 SDOs out per tick needs 2.5 inputs per tick × 2 ms = 5 ms CPU per
	// 10 ms tick → c = 0.5.
	if !almostEq(c, 0.5, 1e-12) {
		t.Errorf("RateToCPU = %g, want 0.5", c)
	}
	back := CPUToRate(c, cost, mult, dt)
	if !almostEq(back, 5, 1e-12) {
		t.Errorf("round trip = %g, want 5", back)
	}
	if RateToCPU(math.Inf(1), cost, mult, dt) != math.Inf(1) {
		t.Errorf("unbounded rate should map to unbounded CPU")
	}
	if RateToCPU(-3, cost, mult, dt) != 0 || CPUToRate(-1, cost, mult, dt) != 0 {
		t.Errorf("negative inputs should clamp to 0")
	}
	// Zero multiplicity defaults to 1.
	if !almostEq(RateToCPU(5, cost, 0, dt), 1.0, 1e-12) {
		t.Errorf("mult=0 default broken")
	}
}

func TestFeedbackOutputBound(t *testing.T) {
	f := NewFeedback()
	if !math.IsInf(f.OutputBound(nil), 1) {
		t.Errorf("egress PE should be unconstrained")
	}
	// Silent downstream → unconstrained (cold start).
	if !math.IsInf(f.OutputBound([]int32{1, 2}), 1) {
		t.Errorf("cold start should be unconstrained")
	}
	f.Publish(1, 10)
	f.Publish(2, 30)
	f.Publish(3, 20)
	// Eq. 8: the max (fastest downstream) gates the sender.
	if got := f.OutputBound([]int32{1, 2, 3}); got != 30 {
		t.Errorf("OutputBound = %g, want 30 (max-flow)", got)
	}
	// Min-flow ablation takes the slowest.
	if got := f.MinBound([]int32{1, 2, 3}); got != 10 {
		t.Errorf("MinBound = %g, want 10 (min-flow)", got)
	}
	// Negative advertisements clamp to zero.
	f.Publish(1, -5)
	if r, ok := f.RMax(1); !ok || r != 0 {
		t.Errorf("RMax(1) = %g,%v", r, ok)
	}
	if f.String() == "" {
		t.Errorf("String broken")
	}
}

func TestFeedbackMinBoundColdStart(t *testing.T) {
	f := NewFeedback()
	f.Publish(1, 10)
	// PE 2 silent: MinBound considers only known advertisements.
	if got := f.MinBound([]int32{1, 2}); got != 10 {
		t.Errorf("MinBound with silent peer = %g, want 10", got)
	}
	if !math.IsInf(f.MinBound([]int32{7}), 1) {
		t.Errorf("all-silent MinBound should be unconstrained")
	}
}

func TestPlanLockStepBaseTargets(t *testing.T) {
	pes := []PETick{
		{Target: 0.6, Work: 1},
		{Target: 0.4, Work: 1},
	}
	alloc := PlanLockStep(pes, 1)
	if !almostEq(alloc[0], 0.6, 1e-9) || !almostEq(alloc[1], 0.4, 1e-9) {
		t.Errorf("lockstep plan = %v, want targets", alloc)
	}
}

func TestPlanLockStepRedistributesOnlyBlockedSlices(t *testing.T) {
	// PE 0 blocked (0.5 target) → its slice flows to the others; PE 3 is
	// idle (no work) and its 0.1 target is simply lost (strict semantics).
	pes := []PETick{
		{Target: 0.5, Work: 1, Blocked: true},
		{Target: 0.2, Work: 1},
		{Target: 0.2, Work: 1},
		{Target: 0.1, Work: 0},
	}
	alloc := PlanLockStep(pes, 1)
	if alloc[0] != 0 {
		t.Errorf("blocked PE allocated %g", alloc[0])
	}
	if alloc[3] != 0 {
		t.Errorf("idle PE allocated %g", alloc[3])
	}
	// Each runnable PE: target 0.2 + half of the blocked 0.5 = 0.45.
	if !almostEq(alloc[1], 0.45, 1e-9) || !almostEq(alloc[2], 0.45, 1e-9) {
		t.Errorf("redistribution = %v, want [0, 0.45, 0.45, 0]", alloc)
	}
	// Idle slack is NOT redistributed: total 0.9, not 1.0.
	if total := alloc[1] + alloc[2]; !almostEq(total, 0.9, 1e-9) {
		t.Errorf("total = %g, want 0.9 (idle slack lost)", total)
	}
}

func TestPlanLockStepWorkCapsRedistribution(t *testing.T) {
	pes := []PETick{
		{Target: 0.5, Work: 1, Blocked: true},
		{Target: 0.3, Work: 0.35}, // can absorb only 0.05 extra
		{Target: 0.2, Work: 1},
	}
	alloc := PlanLockStep(pes, 1)
	if !almostEq(alloc[1], 0.35, 1e-9) {
		t.Errorf("work-capped alloc = %g, want 0.35", alloc[1])
	}
	// The rest of the blocked slice flows to PE 2: 0.2 + (0.5 − 0.05) capped
	// by work (1): 0.65.
	if !almostEq(alloc[2], 0.65, 1e-9) {
		t.Errorf("alloc[2] = %g, want 0.65", alloc[2])
	}
}

func TestPlanLockStepOversubscribedScales(t *testing.T) {
	pes := []PETick{
		{Target: 0.8, Work: 1},
		{Target: 0.8, Work: 1},
	}
	alloc := PlanLockStep(pes, 1)
	if !almostEq(alloc[0]+alloc[1], 1, 1e-9) {
		t.Errorf("oversubscribed total = %g", alloc[0]+alloc[1])
	}
}

// Property: PlanLockStep obeys the same safety invariants as the others.
func TestPlanLockStepInvariantsProperty(t *testing.T) {
	f := func(raw []struct {
		Target, Work uint8
		Blocked      bool
	}) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		pes := make([]PETick, len(raw))
		for i, r := range raw {
			pes[i] = PETick{
				Target:  float64(r.Target) / 255,
				Work:    float64(r.Work) / 64,
				Blocked: r.Blocked,
			}
		}
		var sum float64
		for i, a := range PlanLockStep(pes, 1) {
			if a < -1e-12 || a > pes[i].Work+1e-9 {
				return false
			}
			if pes[i].Blocked && a != 0 {
				return false
			}
			sum += a
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTokenBucketRefillFor(t *testing.T) {
	b := NewTokenBucket(0.1, 10)
	b.Spend(0.1) // empty
	b.RefillFor(2.5)
	if !almostEq(b.Level(), 0.25, 1e-12) {
		t.Errorf("RefillFor(2.5) level = %g, want 0.25", b.Level())
	}
	b.RefillFor(-3) // negative clamps to no-op
	if !almostEq(b.Level(), 0.25, 1e-12) {
		t.Errorf("negative RefillFor changed level: %g", b.Level())
	}
	b.RefillFor(1000)
	if !almostEq(b.Level(), 1.0, 1e-12) {
		t.Errorf("cap not enforced: %g", b.Level())
	}
}

func TestFeedbackMarkDownZeroesBound(t *testing.T) {
	fb := NewFeedback()
	fb.Publish(1, 5)
	fb.Publish(2, 9)
	down := []int32{1, 2}

	if got := fb.OutputBound(down); got != 9 {
		t.Fatalf("healthy bound = %v, want 9", got)
	}
	// The fastest downstream dies: the max must fall back to the live one.
	fb.MarkDown(2, true)
	if got := fb.OutputBound(down); got != 5 {
		t.Errorf("bound with PE2 down = %v, want 5 (route to live replica)", got)
	}
	if !fb.Down(2) || fb.Down(1) {
		t.Errorf("Down marks wrong: 1=%v 2=%v", fb.Down(1), fb.Down(2))
	}
	// Min-flow: any dead downstream gates the sender at zero.
	if got := fb.MinBound(down); got != 0 {
		t.Errorf("min bound with PE2 down = %v, want 0", got)
	}
	// All downstreams dead → bound 0, and AllDown reports the freeze case.
	fb.MarkDown(1, true)
	if got := fb.OutputBound(down); got != 0 {
		t.Errorf("bound with all down = %v, want 0", got)
	}
	if !fb.AllDown(down) {
		t.Error("AllDown false with every downstream marked")
	}
	// Recovery clears the mark and restores the advertisement.
	fb.MarkDown(2, false)
	if got := fb.OutputBound(down); got != 9 {
		t.Errorf("bound after recovery = %v, want 9", got)
	}
	if fb.AllDown(down) {
		t.Error("AllDown true after recovery")
	}
}

func TestFeedbackDownSilencedPeerNotUnconstrained(t *testing.T) {
	fb := NewFeedback()
	fb.Publish(1, 3)
	// PE 2 never advertised. Silent → unconstrained (cold start)…
	if got := fb.OutputBound([]int32{1, 2}); !math.IsInf(got, 1) {
		t.Fatalf("silent downstream bound = %v, want +Inf", got)
	}
	// …but a downed silent PE is not a cold start: its vacancy is not
	// capacity, so the bound must come from the live peers only.
	fb.MarkDown(2, true)
	if got := fb.OutputBound([]int32{1, 2}); got != 3 {
		t.Errorf("downed-silent downstream bound = %v, want 3", got)
	}
	if fb.AllDown(nil) {
		t.Error("AllDown true for empty downstream set")
	}
}

func TestTokenBucketSetRateZeroRoundTripKeepsHorizon(t *testing.T) {
	// Park→unpark round trip: a parked PE has its rate zeroed and its
	// bucket drained; unparking (or a retarget through zero) must restore
	// the full burst horizon, not collapse it to one tick.
	b := NewTokenBucket(0.2, 5)
	b.SetRate(0)
	b.Spend(b.Level())
	if b.Level() != 0 || b.Rate() != 0 {
		t.Fatalf("parked bucket level=%g rate=%g, want 0/0", b.Level(), b.Rate())
	}
	for i := 0; i < 100; i++ {
		b.Refill() // earns nothing while parked
	}
	if b.Level() != 0 {
		t.Fatalf("parked bucket earned %g", b.Level())
	}
	b.SetRate(0.2)
	for i := 0; i < 100; i++ {
		b.Refill()
	}
	if !almostEq(b.Level(), 1.0, 1e-12) {
		t.Errorf("after unpark cap = %g, want 0.2 × 5 = 1.0 (horizon lost through SetRate(0))", b.Level())
	}
}

func TestFeedbackForgetRemovesGhostFromOutputBound(t *testing.T) {
	f := NewFeedback()
	f.Publish(1, 5)
	f.Publish(2, 40)
	down := []int32{1, 2}
	if got := f.OutputBound(down); got != 40 {
		t.Fatalf("OutputBound = %g, want ghost-to-be 40", got)
	}
	// PE 2 is decommissioned by a retarget; it will never advertise again.
	// Its ghost must not feed the Eq. 8 max, and its silence must not make
	// the bound unconstrained either.
	f.Forget(2)
	if got := f.OutputBound(down); got != 5 {
		t.Errorf("OutputBound after Forget = %g, want 5", got)
	}
	if got := f.MinBound(down); got != 5 {
		t.Errorf("MinBound after Forget = %g, want 5", got)
	}
	if _, ok := f.RMax(2); ok {
		t.Errorf("RMax(2) still present after Forget")
	}
	// All live downstreams forgotten: no capacity anywhere, bound is 0.
	f.Forget(1)
	if got := f.OutputBound(down); got != 0 {
		t.Errorf("OutputBound with all forgotten = %g, want 0", got)
	}
	// A forgotten PE that advertises again rejoins the board.
	f.Publish(2, 7)
	if got := f.OutputBound(down); got != 7 {
		t.Errorf("OutputBound after re-publish = %g, want 7", got)
	}
}

func TestFeedbackForgetClearsDownMark(t *testing.T) {
	f := NewFeedback()
	f.Publish(3, 10)
	f.MarkDown(3, true)
	f.Forget(3)
	if f.Down(3) {
		t.Errorf("Down(3) survived Forget")
	}
	if f.AllDown([]int32{3}) {
		t.Errorf("AllDown treats forgotten PE as down")
	}
}
