// Package controller implements ACES tier 2's CPU-control side (paper
// §V-D): per-PE token buckets that hold long-term allocations at the tier-1
// targets, an occupancy-proportional per-tick CPU planner, and the
// downstream feedback bound (Eq. 8) that embodies the max-flow policy.
//
// The package is substrate-agnostic: both the discrete-time simulator
// (internal/streamsim) and the live runtime (internal/spc) feed it the same
// per-tick PE snapshots and apply the allocations it returns.
package controller

import (
	"fmt"
	"math"
)

// TokenBucket accumulates CPU entitlement for one PE: it earns tokens at
// the tier-1 target rate c̄_j (fractions of a node-tick) and spends them
// when the PE is scheduled. Accumulation is capped so a long-idle PE cannot
// later monopolize the node ("if a PE does not use its tokens for a period
// of time, it accumulates these tokens up to a maximum value" — §V-D).
type TokenBucket struct {
	level float64
	rate  float64
	cap   float64
	// horizon is the burst horizon in ticks (cap = rate · horizon). It is
	// stored explicitly rather than derived from cap/rate so the horizon
	// survives a trip through SetRate(0): a parked PE that is later
	// unparked, or a retarget through zero, keeps its banked-burst
	// semantics.
	horizon float64
}

// NewTokenBucket creates a bucket earning rate tokens per tick with a
// capacity of burstTicks ticks' worth of earnings (minimum one tick). The
// bucket starts with one tick of tokens so a fresh PE can run immediately.
func NewTokenBucket(rate float64, burstTicks float64) *TokenBucket {
	if rate < 0 {
		panic("controller: negative token rate")
	}
	if burstTicks < 1 {
		burstTicks = 1
	}
	return &TokenBucket{level: rate, rate: rate, cap: rate * burstTicks, horizon: burstTicks}
}

// Refill adds one tick of earnings.
func (b *TokenBucket) Refill() { b.RefillFor(1) }

// RefillFor adds `ticks` ticks of earnings (fractional ticks allowed) —
// used by the live runtime, whose scheduler measures real elapsed time so
// late or coalesced timer ticks do not lose entitlement.
func (b *TokenBucket) RefillFor(ticks float64) {
	if ticks < 0 {
		ticks = 0
	}
	b.level += b.rate * ticks
	if b.level > b.cap {
		b.level = b.cap
	}
}

// Spend removes x tokens (clamped at zero; overspending is a programmer
// error upstream but must not corrupt the bucket).
func (b *TokenBucket) Spend(x float64) {
	b.level -= x
	if b.level < 0 {
		b.level = 0
	}
}

// Level returns the current token balance.
func (b *TokenBucket) Level() float64 { return b.level }

// Rate returns the per-tick earning rate (the tier-1 target c̄_j).
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the earning rate and rescales the cap, preserving the
// burst horizon — used when tier 1 publishes new targets. The horizon is
// the one fixed at construction, so rate changes are hitless and
// reversible: SetRate(0) followed by SetRate(r) restores exactly the cap
// NewTokenBucket(r, burstTicks) would give.
func (b *TokenBucket) SetRate(rate float64) {
	if rate < 0 {
		panic("controller: negative token rate")
	}
	b.rate = rate
	b.cap = rate * b.horizon
	if b.level > b.cap {
		b.level = b.cap
	}
}

// PETick is one PE's per-tick snapshot handed to the planner.
type PETick struct {
	// Target is the tier-1 CPU target c̄_j (fraction of the node).
	Target float64
	// Tokens is the PE's accumulated entitlement in node-tick fractions.
	Tokens float64
	// Occupancy is the input-buffer fill in SDOs (the congestion signal
	// the planner shares CPU proportionally to).
	Occupancy float64
	// Work is the CPU fraction that would drain the entire input buffer
	// this tick; the planner never allocates beyond it.
	Work float64
	// Cap is the CPU fraction implied by the downstream feedback bound
	// (Eq. 8 mapped through g⁻¹); math.Inf(1) when unconstrained.
	Cap float64
	// Blocked marks a PE that cannot run this tick regardless of budget
	// (Lock-Step senders waiting on a full downstream buffer).
	Blocked bool
}

// Planner holds reusable scratch for the per-tick planning functions so a
// scheduler that plans every Δt allocates nothing in steady state. The
// slice returned by a Planner method aliases its scratch and is valid
// until the next call on the same Planner; a Planner is not safe for
// concurrent use (each node scheduler owns one).
type Planner struct {
	alloc []float64
	want  []float64
	flags []bool
}

// scratch returns zeroed n-length scratch slices, growing the backing
// arrays only when a larger node appears.
func (p *Planner) scratch(n int) (alloc, want []float64, flags []bool) {
	if cap(p.alloc) < n {
		p.alloc = make([]float64, n)
		p.want = make([]float64, n)
		p.flags = make([]bool, n)
	}
	p.alloc, p.want, p.flags = p.alloc[:n], p.want[:n], p.flags[:n]
	clear(p.alloc)
	clear(p.want)
	clear(p.flags)
	return p.alloc, p.want, p.flags
}

// PlanACES computes the per-tick CPU allocations for one node under the
// ACES policy: each PE may spend up to min(tokens, work, cap); when the
// node is oversubscribed, capacity is divided proportionally to input
// buffer occupancy by progressive filling (§V-D: "PEs are allowed to
// expend their tokens for CPU cycles proportional to their input buffer
// occupancies"). The returned allocations sum to at most capacity.
func PlanACES(pes []PETick, capacity float64) []float64 {
	var p Planner
	return p.PlanACES(pes, capacity)
}

// PlanACES is the scratch-reusing form of the package function.
func (p *Planner) PlanACES(pes []PETick, capacity float64) []float64 {
	alloc, want, active := p.scratch(len(pes))
	var total float64
	for i := range pes {
		w := math.Min(pes[i].Tokens, math.Min(pes[i].Work, pes[i].Cap))
		if w < 0 || pes[i].Blocked {
			w = 0
		}
		want[i] = w
		total += w
	}
	if total <= capacity {
		copy(alloc, want)
		return alloc
	}
	// Progressive filling proportional to occupancy: PEs that hit their
	// want drop out and their share is re-divided among the rest.
	remaining := capacity
	nActive := 0
	for i := range pes {
		if want[i] > 0 {
			active[i] = true
			nActive++
		}
	}
	for iter := 0; iter < len(pes)+1 && nActive > 0 && remaining > 1e-15; iter++ {
		var occSum float64
		for i := range pes {
			if active[i] {
				occSum += math.Max(pes[i].Occupancy, 1e-9)
			}
		}
		progressed := false
		grant := remaining
		for i := range pes {
			if !active[i] {
				continue
			}
			share := grant * math.Max(pes[i].Occupancy, 1e-9) / occSum
			room := want[i] - alloc[i]
			if share >= room {
				share = room
				active[i] = false
				nActive--
			}
			if share > 0 {
				alloc[i] += share
				remaining -= share
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return alloc
}

// PlanFairShare computes per-tick allocations for the baseline systems
// (UDP and Lock-Step): every runnable PE receives its long-term target, and
// capacity freed by blocked or idle PEs is redistributed among runnable
// PEs in proportion to their targets, capped by their remaining work
// ("while a PE sleeps, the CPU is redistributed among the other PEs
// residing on the node; the long-term CPU targets of the PEs are met" —
// §VI). The Cap field is ignored: the baselines have no downstream
// feedback.
func PlanFairShare(pes []PETick, capacity float64) []float64 {
	var p Planner
	return p.PlanFairShare(pes, capacity)
}

// PlanFairShare is the scratch-reusing form of the package function.
func (p *Planner) PlanFairShare(pes []PETick, capacity float64) []float64 {
	alloc, _, runnable := p.scratch(len(pes))
	// First pass: base grants, capped by work.
	var used float64
	for i := range pes {
		if pes[i].Blocked || pes[i].Work <= 0 {
			continue
		}
		runnable[i] = true
		g := math.Min(pes[i].Target, pes[i].Work)
		alloc[i] = g
		used += g
	}
	// Defensive: tier-1 targets are per-node feasible by construction, but
	// a caller may hand over-subscribed targets (e.g. perturbed
	// allocations); scale down proportionally rather than overshoot.
	if used > capacity {
		scale := capacity / used
		for i := range alloc {
			alloc[i] *= scale
		}
		return alloc
	}
	// Redistribute leftover proportionally to targets, progressive fill.
	remaining := capacity - used
	for iter := 0; iter < len(pes)+1 && remaining > 1e-15; iter++ {
		var tSum float64
		for i := range pes {
			if runnable[i] && alloc[i] < pes[i].Work {
				tSum += math.Max(pes[i].Target, 1e-9)
			}
		}
		if tSum == 0 {
			break
		}
		progressed := false
		grant := remaining
		for i := range pes {
			if !runnable[i] || alloc[i] >= pes[i].Work {
				continue
			}
			share := grant * math.Max(pes[i].Target, 1e-9) / tSum
			room := pes[i].Work - alloc[i]
			if share > room {
				share = room
			}
			if share > 0 {
				alloc[i] += share
				remaining -= share
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return alloc
}

// PlanLockStep allocates per the paper's System 3 (§VI): every runnable PE
// receives at most its long-term target per tick (strict enforcement, no
// banking), and ONLY the slices of sleeping (blocked) PEs are redistributed
// — proportionally to targets — among runnable PEs with remaining work
// ("while a PE sleeps, the CPU is redistributed among the other PEs
// residing on the node; the long-term CPU targets of the PEs are met").
// Idle slack (a PE with no work) is simply lost, as under traditional
// enforcement.
func PlanLockStep(pes []PETick, capacity float64) []float64 {
	var p Planner
	return p.PlanLockStep(pes, capacity)
}

// PlanLockStep is the scratch-reusing form of the package function.
func (p *Planner) PlanLockStep(pes []PETick, capacity float64) []float64 {
	alloc, _, _ := p.scratch(len(pes))
	var blockedBudget float64
	var used float64
	for i := range pes {
		if pes[i].Blocked {
			blockedBudget += pes[i].Target
			continue
		}
		g := math.Min(pes[i].Target, pes[i].Work)
		if g < 0 {
			g = 0
		}
		alloc[i] = g
		used += g
	}
	if used > capacity {
		scale := capacity / used
		for i := range alloc {
			alloc[i] *= scale
		}
		return alloc
	}
	// Redistribute only the sleeping PEs' entitlement, capped by remaining
	// work and the node budget.
	remaining := math.Min(blockedBudget, capacity-used)
	for iter := 0; iter < len(pes)+1 && remaining > 1e-15; iter++ {
		var tSum float64
		for i := range pes {
			if !pes[i].Blocked && alloc[i] < pes[i].Work {
				tSum += math.Max(pes[i].Target, 1e-9)
			}
		}
		if tSum == 0 {
			break
		}
		progressed := false
		grant := remaining
		for i := range pes {
			if pes[i].Blocked || alloc[i] >= pes[i].Work {
				continue
			}
			share := grant * math.Max(pes[i].Target, 1e-9) / tSum
			room := pes[i].Work - alloc[i]
			if share > room {
				share = room
			}
			if share > 0 {
				alloc[i] += share
				remaining -= share
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return alloc
}

// PlanStrict enforces the tier-1 targets with no redistribution at all
// (the "strict/guarantee-limit enforcement" §II describes as traditional
// practice); used as an ablation baseline.
func PlanStrict(pes []PETick, capacity float64) []float64 {
	var p Planner
	return p.PlanStrict(pes, capacity)
}

// PlanStrict is the scratch-reusing form of the package function.
func (p *Planner) PlanStrict(pes []PETick, capacity float64) []float64 {
	alloc, _, _ := p.scratch(len(pes))
	var used float64
	for i := range pes {
		if pes[i].Blocked {
			continue
		}
		g := math.Min(pes[i].Target, pes[i].Work)
		if used+g > capacity {
			g = capacity - used
		}
		if g < 0 {
			g = 0
		}
		alloc[i] = g
		used += g
	}
	return alloc
}

// RateToCPU converts an output-rate bound (SDOs per tick) into the CPU
// fraction that would produce it: the inverse map g⁻¹ of §V-D with per-SDO
// cost costPerSDO (CPU-seconds), multiplicity mult (output SDOs per input
// SDO) and tick length dt seconds. A non-positive bound yields 0; an
// unconstrained bound (math.Inf) passes through.
func RateToCPU(ratePerTick, costPerSDO, mult, dt float64) float64 {
	if math.IsInf(ratePerTick, 1) {
		return math.Inf(1)
	}
	if ratePerTick <= 0 || dt <= 0 {
		return 0
	}
	if mult <= 0 {
		mult = 1
	}
	// output SDOs per tick = mult · (c·dt / cost)  ⇒  c = rate·cost/(mult·dt)
	return ratePerTick * costPerSDO / (mult * dt)
}

// CPUToRate is the forward map g: CPU fraction to output SDOs per tick.
func CPUToRate(c, costPerSDO, mult, dt float64) float64 {
	if c <= 0 || costPerSDO <= 0 {
		return 0
	}
	if mult <= 0 {
		mult = 1
	}
	return mult * c * dt / costPerSDO
}

// Feedback tracks the most recent r_max advertisements from every PE and
// answers the Eq. 8 query: a PE's output-rate bound is the maximum of its
// downstream PEs' advertised maximum input rates (the max-flow policy:
// "forward packets to all downstream PEs if there is a vacancy in the
// input buffer of its fastest downstream PE").
type Feedback struct {
	rmax map[int32]float64
	// down marks PEs whose host was judged suspect or dead by the health
	// detector (or whose supervisor circuit breaker tripped). A downed
	// PE's advertisement is ignored: it contributes 0 to the Eq. 8 max —
	// flow routes to live replicas — and, unlike a merely silent PE, it
	// does NOT make the bound unconstrained.
	down map[int32]bool
	// forgot marks PEs a retarget decommissioned (target → 0) or
	// re-placed. A forgotten PE's stale advertisement is erased and its
	// subsequent silence is NOT the cold-start kind: it contributes
	// nothing to any bound until it advertises again, at which point it
	// rejoins as a live PE.
	forgot map[int32]bool
}

// NewFeedback returns an empty feedback board.
func NewFeedback() *Feedback {
	return &Feedback{
		rmax:   make(map[int32]float64),
		down:   make(map[int32]bool),
		forgot: make(map[int32]bool),
	}
}

// Publish records PE j's advertised maximum input rate (SDOs/tick). A
// previously forgotten PE that advertises again rejoins the board.
func (f *Feedback) Publish(j int32, r float64) {
	if r < 0 {
		r = 0
	}
	delete(f.forgot, j)
	f.rmax[j] = r
}

// RMax returns PE j's last advertisement and whether one exists.
func (f *Feedback) RMax(j int32) (float64, bool) {
	r, ok := f.rmax[j]
	return r, ok
}

// MarkDown sets or clears PE j's failure mark. While marked, j is treated
// as r_max = 0 in every bound — regardless of its last advertisement,
// which a dead host can no longer retract.
func (f *Feedback) MarkDown(j int32, down bool) {
	if down {
		f.down[j] = true
	} else {
		delete(f.down, j)
	}
}

// Down reports PE j's failure mark.
func (f *Feedback) Down(j int32) bool { return f.down[j] }

// Forget erases every trace of PE j from the board: its last
// advertisement, its failure mark, everything. Retargeting calls it when
// a new epoch zeroes a PE's CPU target (the PE is being decommissioned or
// re-placed) — without it the ghost r_max would keep feeding the Eq. 8
// max forever, since a decommissioned PE never advertises a retraction.
// Unlike a never-seen PE, a forgotten one does not unconstrain its
// upstream's bound; it simply stops contributing until it publishes again.
func (f *Feedback) Forget(j int32) {
	delete(f.rmax, j)
	delete(f.down, j)
	f.forgot[j] = true
}

// Recover erases PE j's failure mark AND its stale advertisement,
// returning it to the never-seen cold-start state. Membership calls it on
// a dead → alive transition: the last advertisement predates the outage
// (often pinned near 0 by the dying host's congestion), so keeping it
// would hold upstream Eq. 8 bounds closed until a fresh feedback frame
// happens to arrive. Cold start must not stall the pipeline, so a
// recovered PE is unconstrained until its next advertisement — which the
// per-tick feedback cycle delivers within one interval.
func (f *Feedback) Recover(j int32) {
	delete(f.rmax, j)
	delete(f.down, j)
	delete(f.forgot, j)
}

// AllDown reports whether the listed PEs are all marked down (false for
// an empty list). Senders use it to detect that every downstream
// advertisement is a failure artifact and freeze their flow controller
// instead of winding it up against phantom congestion.
func (f *Feedback) AllDown(downstream []int32) bool {
	if len(downstream) == 0 {
		return false
	}
	for _, d := range downstream {
		if !f.down[d] {
			return false
		}
	}
	return true
}

// OutputBound implements Eq. 8 for a PE with the given downstream set:
// max over downstream advertisements. PEs that have not advertised yet are
// treated as unconstrained (cold start must not stall the pipeline), so the
// bound is +Inf if any downstream is silent; egress PEs (no downstream) are
// unconstrained. Downed and forgotten PEs contribute 0 — and their silence
// does NOT unconstrain the bound: a dead downstream's vacancy is not
// capacity, and a decommissioned one has no buffer at all.
func (f *Feedback) OutputBound(downstream []int32) float64 {
	if len(downstream) == 0 {
		return math.Inf(1)
	}
	bound := 0.0
	for _, d := range downstream {
		if f.down[d] || f.forgot[d] {
			continue
		}
		r, ok := f.rmax[d]
		if !ok {
			return math.Inf(1)
		}
		if r > bound {
			bound = r
		}
	}
	return bound
}

// MinBound is the min-flow counterpart of OutputBound, used by the
// Lock-Step ablation: the slowest downstream PE gates the sender. A downed
// PE gates at 0 — min-flow semantics say the sender must not outrun ANY
// downstream, and a dead one accepts nothing.
func (f *Feedback) MinBound(downstream []int32) float64 {
	if len(downstream) == 0 {
		return math.Inf(1)
	}
	bound := math.Inf(1)
	for _, d := range downstream {
		if f.down[d] {
			return 0
		}
		if f.forgot[d] {
			continue
		}
		r, ok := f.rmax[d]
		if !ok {
			continue
		}
		if r < bound {
			bound = r
		}
	}
	return bound
}

// GroupedOutputBound is Eq. 8 for a sender whose downstream PEs are
// replica groups: groups[d] lists the feedback keys of the ACTIVE replicas
// of logical PE d, the group's capacity is the SUM of its members'
// advertisements (any replica can absorb any key's share of the stream),
// and the bound is the max over downstream groups, exactly as OutputBound
// takes the max over PEs. Member semantics match the singleton bound:
// downed and forgotten replicas contribute 0 without unconstraining, a
// silent never-seen member makes the whole bound +Inf (cold start must not
// stall), and a singleton group reproduces OutputBound bit for bit.
func (f *Feedback) GroupedOutputBound(groups [][]int32, downstream []int32) float64 {
	if len(downstream) == 0 {
		return math.Inf(1)
	}
	bound := 0.0
	for _, d := range downstream {
		sum := 0.0
		for _, k := range groups[d] {
			if f.down[k] || f.forgot[k] {
				continue
			}
			r, ok := f.rmax[k]
			if !ok {
				return math.Inf(1)
			}
			sum += r
		}
		if sum > bound {
			bound = sum
		}
	}
	return bound
}

// GroupedMinBound is the min-flow counterpart of GroupedOutputBound: the
// slowest downstream GROUP gates the sender, a group's capacity being the
// sum over its live members. A fully-downed group gates at 0 (a dead
// group accepts nothing); partially-downed members just contribute 0.
// Singleton groups reproduce MinBound exactly.
func (f *Feedback) GroupedMinBound(groups [][]int32, downstream []int32) float64 {
	if len(downstream) == 0 {
		return math.Inf(1)
	}
	bound := math.Inf(1)
	for _, d := range downstream {
		sum := 0.0
		seen := false
		allDown := len(groups[d]) > 0
		for _, k := range groups[d] {
			if f.down[k] {
				continue
			}
			allDown = false
			if f.forgot[k] {
				continue
			}
			r, ok := f.rmax[k]
			if !ok {
				continue
			}
			sum += r
			seen = true
		}
		if allDown {
			return 0
		}
		if !seen {
			continue
		}
		if sum < bound {
			bound = sum
		}
	}
	return bound
}

// GroupedAllDown reports whether every replica of every downstream group
// is marked down (false for an empty downstream set). Singleton groups
// reproduce AllDown exactly.
func (f *Feedback) GroupedAllDown(groups [][]int32, downstream []int32) bool {
	if len(downstream) == 0 {
		return false
	}
	for _, d := range downstream {
		if len(groups[d]) == 0 {
			return false
		}
		for _, k := range groups[d] {
			if !f.down[k] {
				return false
			}
		}
	}
	return true
}

// String renders the board for debugging.
func (f *Feedback) String() string {
	return fmt.Sprintf("feedback{%d PEs}", len(f.rmax))
}
