package aces_test

import (
	"math"
	"testing"

	"aces"
)

// The facade test doubles as the quickstart: build a pipeline through the
// public API only, optimize, and run it on both substrates.
func buildPipeline(t *testing.T) *aces.Topology {
	t.Helper()
	topo := aces.NewTopology(2, 50)
	svc := aces.ServiceParams{T0: 0.002, T1: 0.002, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	parse := topo.AddPE(aces.PE{Name: "parse", Service: svc, Node: 0})
	score := topo.AddPE(aces.PE{Name: "score", Service: svc, Node: 1, Weight: 1})
	if err := topo.Connect(parse, score); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: parse, Rate: 100,
		Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 2, MeanOn: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestQuickstartSimulator(t *testing.T) {
	topo := buildPipeline(t)
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WeightedThroughput <= 0 {
		t.Fatalf("tier-1 predicts zero throughput")
	}
	rep, err := aces.Simulate(aces.SimConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: alloc.CPU, Duration: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WeightedThroughput-100)/100 > 0.1 {
		t.Errorf("simulated wt = %.1f, want ≈100 (underloaded pipeline)", rep.WeightedThroughput)
	}
}

func TestQuickstartLiveCluster(t *testing.T) {
	topo := buildPipeline(t)
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := aces.NewCluster(aces.ClusterConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: alloc.CPU, TimeScale: 20, Warmup: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WeightedThroughput-100)/100 > 0.25 {
		t.Errorf("live wt = %.1f, want ≈100", rep.WeightedThroughput)
	}
}

func TestGenerateAndPolicies(t *testing.T) {
	topo, err := aces.Generate(aces.DefaultGenConfig(30, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{MaxIters: 200, Utility: aces.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aces", "udp", "lockstep"} {
		pol, err := aces.ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := aces.Simulate(aces.SimConfig{Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: 8, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Deliveries == 0 {
			t.Errorf("%s: no deliveries", name)
		}
	}
}

func TestFlowGainDesignThroughFacade(t *testing.T) {
	g, err := aces.DesignFlowGains(aces.DefaultFlowDesign(25))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := aces.NewFlowController(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Matched rates at the target buffer level advertise exactly ρ.
	if r := fc.Update(4, 25); math.Abs(r-4) > 0.5 {
		t.Errorf("r_max = %g, want ≈4", r)
	}
}

func TestExperimentOptionsExposed(t *testing.T) {
	d := aces.DefaultExperiments()
	q := aces.QuickExperiments()
	if d.PEs != 200 || d.Nodes != 80 {
		t.Errorf("paper scale wrong: %+v", d)
	}
	if q.PEs >= d.PEs || q.Duration >= d.Duration {
		t.Errorf("quick options should be smaller than default")
	}
}
